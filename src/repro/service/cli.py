"""``repro-bench service`` — operate the campaign coordinator.

Actions::

    service start   --state-dir results/service --workers 2
    service submit  --state-dir results/service --backends default,knem \\
                    --sizes 64K,256K --seeds 3 --wait --out doc.json
    service status  --state-dir results/service [--sub sub1]
    service watch   --state-dir results/service --sub sub1
    service cancel  --state-dir results/service --sub sub1
    service fetch   --state-dir results/service --sub sub1 --out doc.json
    service worker  --state-dir results/service --name bench-node2

``start`` runs the daemon in the foreground (Ctrl-C or a client
``shutdown`` stops it); every other action discovers the endpoint from
the state directory's ``service.json``.  The spec axes of ``submit``
are exactly the ``campaign`` subcommand's, so the same flags produce
the same trial hashes — resubmitting a spec the fleet already ran is
100 % store hits.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-bench service",
        description="Long-running campaign coordinator: submit specs "
        "over a socket, shard trials across worker agents, serve many "
        "concurrent clients off one deduplicating result store.",
    )
    p.add_argument(
        "action",
        choices=["start", "submit", "status", "watch", "cancel", "fetch",
                 "worker"],
        help="what to do (see the module examples)",
    )
    p.add_argument(
        "--state-dir",
        metavar="DIR",
        default="results/service",
        help="coordinator state: endpoint file, journals, telemetry "
        "(default: results/service)",
    )
    start = p.add_argument_group("start")
    start.add_argument(
        "--store",
        metavar="URL",
        help="result store backing: a directory path, sqlite:<file> (or "
        "any *.db path), or mem: (default: <state-dir>/results)",
    )
    start.add_argument(
        "--port", type=int, default=0,
        help="listen port (default: ephemeral, advertised in service.json)",
    )
    start.add_argument(
        "--workers", type=int, default=2,
        help="local worker agents the coordinator spawns (default: 2)",
    )
    start.add_argument(
        "--lease-ttl", type=float, default=60.0,
        help="per-trial wall-clock watchdog budget in seconds",
    )
    start.add_argument(
        "--retry-budget", type=int, default=3,
        help="deterministic failures before a trial is quarantined",
    )
    start.add_argument(
        "--max-wall", type=float, default=None,
        help="stop the coordinator after this many seconds (CI harness)",
    )
    sub = p.add_argument_group("submit")
    from repro.bench.cli import _add_spec_axes

    _add_spec_axes(p)
    sub.add_argument(
        "--priority",
        choices=["interactive", "bulk"],
        default="bulk",
        help="dispatch class: interactive preempts bulk at the next "
        "trial boundary (default: bulk)",
    )
    sub.add_argument(
        "--client", default="cli",
        help="client identity for per-client metrics (default: cli)",
    )
    sub.add_argument(
        "--wait", action="store_true",
        help="submit: block until the submission settles",
    )
    multi = p.add_argument_group("submit/status/watch/cancel/fetch")
    multi.add_argument("--sub", metavar="ID", help="submission id")
    multi.add_argument(
        "--out", metavar="FILE",
        help="write the fetched campaign document (submit --wait, fetch)",
    )
    multi.add_argument(
        "--interval", type=float, default=0.5,
        help="watch poll interval in seconds (default: 0.5)",
    )
    multi.add_argument(
        "--timeout", type=float, default=300.0,
        help="watch/--wait settle timeout in seconds (default: 300)",
    )
    agent = p.add_argument_group("worker")
    agent.add_argument(
        "--agent-name", default="worker",
        help="agent name (the coordinator tags it with an incarnation)",
    )
    agent.add_argument(
        "--max-trials", type=int, default=None,
        help="detach after this many trials (default: until shutdown)",
    )
    return p


def _format_sub_status(s: dict) -> str:
    return (
        f"{s['sub']} [{s['priority']}] {s['client']}/{s['name']}: "
        f"{s['done']}/{s['trials']} done "
        f"({s['hits']} store hits, {s['leased']} leased, "
        f"{s['pending']} pending, {s['quarantined']} quarantined) "
        f"{s['state']}"
    )


def _run_start(args) -> int:
    from repro.service.coordinator import Coordinator
    from repro.service.stores import open_store

    store = open_store(args.store) if args.store else str(
        Path(args.state_dir) / "results"
    )
    co = Coordinator(
        store,
        args.state_dir,
        port=args.port,
        local_workers=args.workers,
        lease_ttl=args.lease_ttl,
        retry_budget=args.retry_budget,
        name=args.name,
    )
    co.start()
    print(
        f"coordinator {args.name!r} listening on {co.host}:{co.port} "
        f"({co.local_workers} local agents, "
        f"{co.cache.store.kind} store at {co.cache.url}) — "
        f"endpoint in {args.state_dir}/service.json",
        file=sys.stderr,
    )

    # Foreground until stopped: Ctrl-C / SIGTERM / a client "shutdown".
    signal.signal(signal.SIGTERM, lambda *_: co.stop())
    t0 = time.time()
    try:
        while not co.stopping:
            if args.max_wall is not None and time.time() - t0 > args.max_wall:
                print("coordinator max-wall reached; stopping", file=sys.stderr)
                break
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    co.stop()
    print("coordinator stopped", file=sys.stderr)
    return 0


def _run_submit(args) -> int:
    from repro.bench.cli import _campaign_spec
    from repro.bench.store import atomic_write_json
    from repro.service.client import ServiceClient

    spec = _campaign_spec(args)
    client = ServiceClient(args.state_dir, client=args.client)
    reply = client.submit(spec, priority=args.priority)
    print(
        f"submitted {reply['sub']}: {reply['trials']} trials "
        f"({reply['hits']} store hits, {reply['pending']} to run) "
        f"priority={args.priority}"
    )
    if not (args.wait or args.out):
        return 0
    status = client.watch(
        reply["sub"], interval=args.interval, timeout=args.timeout,
        on_update=lambda s: print(_format_sub_status(s), file=sys.stderr),
    )
    if args.out:
        doc = client.fetch(reply["sub"])
        atomic_write_json(args.out, doc)
        print(f"saved campaign document to {args.out}", file=sys.stderr)
    return 0 if status["quarantined"] == 0 else 1


def _run_status(args) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.state_dir)
    if args.sub:
        print(_format_sub_status(client.status(args.sub)))
        return 0
    doc = client.status()
    store = doc["store"]
    print(
        f"service {doc['name']!r}: up {doc['uptime']:.1f}s | "
        f"{len(doc['submissions'])} submission(s) | "
        f"{doc['inflight']} in flight | agents: "
        f"{', '.join(doc['agents']) or 'none'}"
    )
    print(
        f"store [{store['kind']}]: {store['records']} records | "
        f"{store['hits']} hits | {store['misses']} misses"
    )
    for s in doc["submissions"]:
        print("  " + _format_sub_status(s))
    return 0


def _run_watch(args) -> int:
    from repro.service.client import ServiceClient

    if not args.sub:
        print("service watch needs --sub ID", file=sys.stderr)
        return 2
    client = ServiceClient(args.state_dir)
    status = client.watch(
        args.sub, interval=args.interval, timeout=args.timeout,
        on_update=lambda s: print(_format_sub_status(s)),
    )
    return 0 if status["state"] != "cancelled" else 1


def _run_cancel(args) -> int:
    from repro.service.client import ServiceClient

    if not args.sub:
        print("service cancel needs --sub ID", file=sys.stderr)
        return 2
    reply = ServiceClient(args.state_dir).cancel(args.sub)
    print(f"{reply['sub']}: {reply['state']}")
    return 0


def _run_fetch(args) -> int:
    from repro.bench.store import atomic_write_json
    from repro.service.client import ServiceClient

    if not args.sub:
        print("service fetch needs --sub ID", file=sys.stderr)
        return 2
    doc = ServiceClient(args.state_dir).fetch(args.sub)
    if args.out:
        atomic_write_json(args.out, doc)
        print(f"saved campaign document to {args.out}", file=sys.stderr)
    else:
        json.dump(doc, sys.stdout, indent=2)
        print()
    return 0


def _run_worker(args) -> int:
    from repro.service.protocol import read_endpoint
    from repro.service.worker import agent_loop

    endpoint = read_endpoint(args.state_dir)
    print(
        f"agent {args.agent_name!r} attaching to "
        f"{endpoint['host']}:{endpoint['port']}",
        file=sys.stderr,
    )
    ran = agent_loop(
        endpoint["host"], int(endpoint["port"]), args.agent_name,
        trace_dir=args.trace_dir, max_trials=args.max_trials,
    )
    print(f"agent {args.agent_name!r} detached after {ran} trial(s)",
          file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    from repro.errors import ServiceError

    actions = {
        "start": _run_start,
        "submit": _run_submit,
        "status": _run_status,
        "watch": _run_watch,
        "cancel": _run_cancel,
        "fetch": _run_fetch,
        "worker": _run_worker,
    }
    try:
        return actions[args.action](args)
    except ServiceError as exc:
        print(f"service {args.action}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
