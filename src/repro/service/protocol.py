"""The service wire protocol: newline-delimited JSON over TCP.

Every message is one JSON object on one line (the same framing as the
lease journal — one parseable unit per line, nothing to resynchronize).
The coordinator listens on localhost with an ephemeral port and
advertises the endpoint in ``<state_dir>/service.json``, so clients and
worker agents discover it from the state directory alone.

Message vocabulary (``type`` field):

======================  =============================================
client -> coordinator
----------------------------------------------------------------------
``ping``                liveness + identity probe
``submit``              a campaign spec (``spec`` dict, ``priority``,
                        ``client``) -> ``submitted`` with the sub id
``status``              one submission (``sub``) or the whole service
``fetch``               the finished campaign document of ``sub``
``cancel``              stop dispatching ``sub``'s pending trials
``shutdown``            drain-free coordinator stop
----------------------------------------------------------------------
agent -> coordinator
----------------------------------------------------------------------
``attach``              join the fleet (``agent`` name) ->
                        ``attached`` with the incarnation-tagged
                        worker id
``next``                request work -> ``trial`` / ``idle`` /
                        ``shutdown``
``report``              a finished trial record (``sub``, ``hash``,
                        ``token``, ``record``) -> ``ack``
======================  =============================================

Replies carry ``type`` of ``error`` (with an ``error`` string) when a
request cannot be honored; transport-level garbage raises
:class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import json
import os
import socket
from pathlib import Path
from typing import Optional

from repro.bench.store import atomic_write_json
from repro.errors import ServiceError

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_HOST",
    "send_msg",
    "recv_msg",
    "connect",
    "request",
    "write_endpoint",
    "read_endpoint",
    "ENDPOINT_FILE",
]

PROTOCOL_VERSION = 1

#: The coordinator serves the local fleet; nothing binds beyond loopback.
DEFAULT_HOST = "127.0.0.1"

#: Endpoint discovery file written into the coordinator's state dir.
ENDPOINT_FILE = "service.json"


def send_msg(wfile, msg: dict) -> None:
    """Write one message as a single line and flush it."""
    wfile.write((json.dumps(msg, sort_keys=True) + "\n").encode())
    wfile.flush()


def recv_msg(rfile) -> Optional[dict]:
    """Read one message; ``None`` on a clean EOF (peer closed)."""
    line = rfile.readline()
    if not line:
        return None
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"undecodable protocol line: {exc}") from None
    if not isinstance(msg, dict) or "type" not in msg:
        raise ServiceError(f"protocol message without a type: {msg!r}")
    return msg


def connect(host: str, port: int, timeout: Optional[float] = 10.0):
    """Open a connection; returns ``(sock, rfile, wfile)``."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ServiceError(
            f"cannot reach coordinator at {host}:{port}: {exc}"
        ) from None
    # The timeout above bounds connect; reads block until the reply
    # (trial execution happens coordinator-side of a fetch, never here).
    sock.settimeout(timeout)
    return sock, sock.makefile("rb"), sock.makefile("wb")


def request(host: str, port: int, msg: dict, timeout: Optional[float] = 30.0) -> dict:
    """One-shot request/response on a fresh connection."""
    sock, rfile, wfile = connect(host, port, timeout=timeout)
    try:
        send_msg(wfile, msg)
        reply = recv_msg(rfile)
    finally:
        try:
            sock.close()
        except OSError:
            pass
    if reply is None:
        raise ServiceError(
            f"coordinator at {host}:{port} closed the connection without "
            f"replying to {msg.get('type')!r}"
        )
    return reply


def write_endpoint(state_dir: str | Path, host: str, port: int, name: str) -> Path:
    """Advertise a running coordinator in ``<state_dir>/service.json``."""
    path = Path(state_dir) / ENDPOINT_FILE
    atomic_write_json(path, {
        "version": PROTOCOL_VERSION,
        "kind": "service-endpoint",
        "name": name,
        "host": host,
        "port": int(port),
        "pid": os.getpid(),
    })
    return path


def read_endpoint(state_dir: str | Path) -> dict:
    """The advertised endpoint, or raise with a start hint."""
    path = Path(state_dir) / ENDPOINT_FILE
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise ServiceError(
            f"no {ENDPOINT_FILE} in {state_dir!r} — is a coordinator "
            "running there? (repro-bench service start)"
        ) from None
    except json.JSONDecodeError as exc:
        raise ServiceError(f"unreadable {path}: {exc}") from None
    if not isinstance(doc, dict) or "host" not in doc or "port" not in doc:
        raise ServiceError(f"malformed endpoint file {path}: {doc!r}")
    return doc
