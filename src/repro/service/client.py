"""Client-side API of the campaign service.

:class:`ServiceClient` wraps the wire protocol in methods: ``submit``
a spec, poll ``status``, ``watch`` until settled, ``fetch`` the
finished document, ``cancel``, ``shutdown``.  Every call is a one-shot
request/response on a fresh connection, so any number of clients — and
any number of *threads* within one client — can hit the same
coordinator concurrently with no connection state to corrupt.

Construct from an explicit ``(host, port)`` or from a state directory,
in which case the endpoint is discovered from the coordinator's
``service.json``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.campaign.spec import CampaignSpec
from repro.errors import ServiceError
from repro.service.protocol import read_endpoint, request

__all__ = ["ServiceClient"]


class ServiceClient:
    """Handle on a running coordinator."""

    def __init__(
        self,
        target: Union[str, Path, tuple],
        *,
        client: str = "cli",
        timeout: float = 30.0,
    ) -> None:
        if isinstance(target, tuple):
            self.host, self.port = target[0], int(target[1])
        else:
            endpoint = read_endpoint(target)
            self.host, self.port = endpoint["host"], int(endpoint["port"])
        #: Identity attached to submissions (per-client queue-depth
        #: metrics key on the coordinator).
        self.client = client
        self.timeout = timeout

    def _request(self, msg: dict) -> dict:
        reply = request(self.host, self.port, msg, timeout=self.timeout)
        if reply.get("type") == "error":
            raise ServiceError(reply.get("error", "unknown service error"))
        return reply

    # ------------------------------------------------------------------ API
    def ping(self) -> dict:
        return self._request({"type": "ping"})

    def submit(
        self,
        spec: Union[CampaignSpec, dict],
        priority: str = "bulk",
    ) -> dict:
        """Submit a campaign; returns ``{sub, trials, hits, pending}``."""
        payload = spec.to_dict() if isinstance(spec, CampaignSpec) else spec
        return self._request({
            "type": "submit",
            "spec": payload,
            "priority": priority,
            "client": self.client,
        })

    def status(self, sub: Optional[str] = None) -> dict:
        """One submission's status dict, or the whole-service status."""
        msg: dict = {"type": "status"}
        if sub is not None:
            msg["sub"] = sub
            return self._request(msg)["submission"]
        return self._request(msg)

    def watch(
        self,
        sub: str,
        *,
        interval: float = 0.2,
        timeout: Optional[float] = 300.0,
        on_update: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Poll until the submission settles; returns its final status.

        ``on_update`` (if given) receives every polled status — the CLI
        uses it to stream progress lines.
        """
        deadline = None if timeout is None else time.time() + timeout
        last = None
        while True:
            status = self.status(sub)
            if on_update is not None and status != last:
                on_update(status)
                last = dict(status)
            if status["settled"] or status["state"] == "cancelled":
                return status
            if deadline is not None and time.time() > deadline:
                raise ServiceError(
                    f"watch timed out after {timeout}s: {status}"
                )
            time.sleep(interval)

    def fetch(self, sub: str) -> dict:
        """The finished campaign document (byte-identical to a serial
        ``campaign run`` of the same spec)."""
        return self._request({"type": "fetch", "sub": sub})["doc"]

    def cancel(self, sub: str) -> dict:
        return self._request({"type": "cancel", "sub": sub})

    def shutdown(self) -> None:
        self._request({"type": "shutdown"})
