"""Worker agents: incarnation-tagged lease consumers over the socket.

One loop serves both agent flavors.  The coordinator spawns *local*
agents as forked processes of its own; operators attach *external*
agents with ``repro-bench service worker`` from any shell on the same
host.  Either way the agent speaks the same three-message protocol —
``attach`` (get an incarnation-tagged worker id), ``next`` (pull one
trial), ``report`` (return the record) — and executes trials through
:func:`repro.campaign.executor.run_trial`, which never raises: a
deterministic failure travels back as a ``status: "failed"`` record
and consumes the submission's retry budget, while an agent that *dies*
(chaos SIGKILL, OOM) just drops its socket, which the coordinator
treats as the death notice and requeues for free.

Agents never touch the result store; the coordinator is its sole
writer.  That keeps the agent a pure function from config to record —
attachable from any process that can reach the socket.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.campaign.chaos import POOL_KILL_ENV
from repro.campaign.executor import run_trial
from repro.errors import ServiceError
from repro.service.protocol import connect, recv_msg, send_msg

__all__ = ["agent_loop"]


def agent_loop(
    host: str,
    port: int,
    name: str = "agent",
    *,
    defuse_chaos: bool = False,
    poll: float = 0.05,
    trace_dir: Optional[str] = None,
    max_trials: Optional[int] = None,
    max_wall: Optional[float] = None,
) -> int:
    """Attach to a coordinator and pull trials until told to stop.

    Returns the number of trials executed.  ``defuse_chaos`` strips the
    ``REPRO_CHAOS_KILL`` trigger from this process — the coordinator
    sets it when respawning a slot the hook already killed, so injected
    deaths happen exactly once per slot instead of forever.
    ``max_trials`` / ``max_wall`` bound the loop for tests and for
    batch-style external agents.
    """
    if defuse_chaos:
        os.environ.pop(POOL_KILL_ENV, None)
    sock, rfile, wfile = connect(host, port, timeout=30.0)
    sock.settimeout(None)  # "next" replies may wait on the coordinator
    t0 = time.time()
    ran = 0
    try:
        send_msg(wfile, {"type": "attach", "agent": name})
        hello = recv_msg(rfile)
        if hello is None or hello.get("type") != "attached":
            raise ServiceError(f"attach refused: {hello!r}")
        worker_id = hello["worker"]
        while True:
            if max_trials is not None and ran >= max_trials:
                break
            if max_wall is not None and time.time() - t0 > max_wall:
                break
            send_msg(wfile, {"type": "next", "worker": worker_id})
            msg = recv_msg(rfile)
            if msg is None or msg["type"] == "shutdown":
                break
            if msg["type"] == "idle":
                time.sleep(poll)
                continue
            if msg["type"] != "trial":
                raise ServiceError(f"unexpected dispatch reply: {msg!r}")
            record = run_trial(msg["config"], trace_dir)
            record.pop("wall", None)  # host-local, never on the wire
            send_msg(wfile, {
                "type": "report",
                "worker": worker_id,
                "sub": msg["sub"],
                "hash": msg["hash"],
                "attempt": msg["attempt"],
                "token": msg["token"],
                "record": record,
            })
            ack = recv_msg(rfile)
            if ack is None:
                break
            ran += 1
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return ran


def _local_agent_main(
    host: str, port: int, name: str, defuse_chaos: bool,
    trace_dir: Optional[str],
) -> None:
    """Process target for coordinator-spawned local agents."""
    try:
        agent_loop(
            host, port, name,
            defuse_chaos=defuse_chaos, trace_dir=trace_dir,
        )
    except ServiceError:
        # The coordinator went away (shutdown race); nothing to clean
        # up — our leases requeue via the dropped socket.
        pass
