"""The campaign coordinator: a long-running, multi-client serving daemon.

One :class:`Coordinator` turns the one-shot campaign stack into a
service.  Clients submit :class:`~repro.campaign.spec.CampaignSpec`\\ s
over the JSONL socket API; each submission gets its own durable
:class:`~repro.campaign.queue.LeaseQueue` (journal under
``<state_dir>/subs/<id>/``), and *worker agents* — local processes the
coordinator spawns, plus any number of externally attached
``repro-bench service worker`` processes — pull trials one at a time
over the same socket.  The coordinator is the sole writer of the shared
:class:`~repro.service.stores.ResultStore`: agents report records over
the wire, which is what lets the in-memory store serve single-process
tests through exactly the code paths the sqlite store serves a fleet.

Scheduling is a two-level priority queue: every ``next`` request scans
*interactive* submissions (FIFO) before *bulk* ones, so an interactive
submission preempts a long bulk sweep at the next trial boundary — no
mid-trial kills, just pull-ordering.  Fleet-wide dedup has three
layers: records already in the store are served at submit time; a trial
in flight for one submission is never leased again for another (the
``skip`` set); and a landing report completes the same hash in every
other submission's queue (``dedup`` completions).

Failure semantics are the supervisor's: an agent that dies (socket EOF,
process exit, lease deadline) requeues its trials for free; a trial
that *reports* failure consumes the per-submission retry budget and
quarantines after ``retry_budget`` attempts.  Local agents that died to
the ``REPRO_CHAOS_KILL`` hook are respawned with the hook defused, so
injected kills prove recovery without livelocking the fleet.

The finished document (``fetch``) is assembled through
:class:`~repro.campaign.executor.CampaignRun`, so it is byte-identical
to the same spec run via serial ``campaign run``.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.campaign.cache import ResultCache
from repro.campaign.chaos import POOL_KILL_ENV
from repro.campaign.executor import CampaignRun
from repro.campaign.queue import Lease, LeaseQueue
from repro.campaign.spec import CampaignSpec, Trial
from repro.campaign.telemetry import FleetTelemetry
from repro.errors import LeaseExpired, ServiceError
from repro.obs.metrics import MetricsRegistry
from repro.service.protocol import (
    DEFAULT_HOST,
    PROTOCOL_VERSION,
    ENDPOINT_FILE,
    recv_msg,
    send_msg,
    write_endpoint,
)

__all__ = ["Coordinator", "PRIORITIES", "Submission"]

#: Dispatch classes, scanned in this order: every ``next`` request
#: offers all interactive work before any bulk work.
PRIORITIES = ("interactive", "bulk")

#: Submission lifecycle states.
SUB_STATES = ("running", "done", "cancelled")


@dataclass
class Submission:
    """One client-submitted campaign and its dispatch state."""

    sub_id: str
    client: str
    priority: str
    spec: CampaignSpec
    trials: list[Trial]
    queue: LeaseQueue
    #: Trial hash -> finished record (with the ``cached`` flag set).
    records: dict[str, dict] = field(default_factory=dict)
    #: Trial hash -> canonical config (dispatch lookup).
    configs: dict[str, dict] = field(default_factory=dict)
    #: Store hits served at submit time.
    hits: int = 0
    state: str = "running"
    created: float = 0.0
    #: Wall clock of the first record landing (tail-latency metric).
    first_result_t: Optional[float] = None

    @property
    def settled(self) -> bool:
        return all(t.hash in self.records for t in self.trials)

    def status(self) -> dict:
        q = self.queue
        return {
            "sub": self.sub_id,
            "client": self.client,
            "priority": self.priority,
            "name": self.spec.name,
            "state": self.state,
            "trials": len(self.trials),
            "hits": self.hits,
            "done": len(self.records),
            "pending": len(q.pending),
            "leased": len(q.leased),
            "quarantined": len(q.quarantined),
            "settled": self.settled,
        }


class _QueueView:
    """Aggregate all submissions' queues for :class:`FleetTelemetry`.

    The telemetry writer was built for one supervised queue; this
    adapter presents the fleet's union — combined depth lists, merged
    per-trial states (for retry-budget consumption), summed journal
    counters — so ``status.json`` keeps its shape with N clients.
    """

    def __init__(self, coordinator: "Coordinator") -> None:
        self._co = coordinator

    def _queues(self):
        return [s.queue for s in self._co._submissions.values()]

    @property
    def pending(self):
        return [h for q in self._queues() for h in q.pending]

    @property
    def leased(self):
        return [h for q in self._queues() for h in q.leased]

    @property
    def done(self):
        return [h for q in self._queues() for h in q.done]

    @property
    def quarantined(self):
        return [h for q in self._queues() for h in q.quarantined]

    @property
    def states(self):
        merged = {}
        for i, q in enumerate(self._queues()):
            for h, s in q.states.items():
                merged[f"{i}:{h}"] = s
        return merged

    @property
    def counters(self):
        totals = {"events": 0, "torn_lines": 0, "chaos_kills": 0}
        for q in self._queues():
            for k in totals:
                totals[k] += q.counters.get(k, 0)
        return totals


class Coordinator:
    """The serving daemon.  ``start()`` it, ``stop()`` it; everything
    in between arrives over the socket."""

    def __init__(
        self,
        store,
        state_dir: str | Path,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        local_workers: int = 2,
        lease_ttl: float = 60.0,
        retry_budget: int = 3,
        backoff_base: float = 0.05,
        poll: float = 0.02,
        telemetry_interval: float = 0.5,
        trace_dir: Optional[str] = None,
        name: str = "service",
    ) -> None:
        #: ``store`` is anything :class:`ResultCache` fronts: a
        #: directory path, a store URL is NOT accepted here (pass the
        #: opened store), or a ``ResultStore`` instance.
        self.cache = store if isinstance(store, ResultCache) else ResultCache(store)
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.local_workers = local_workers
        self.lease_ttl = lease_ttl
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.poll = poll
        self.trace_dir = trace_dir
        self.name = name

        self.metrics = MetricsRegistry()
        self.telemetry = FleetTelemetry(
            self.metrics,
            queue=_QueueView(self),
            cache=self.cache,
            out_dir=self.state_dir,
            name=name,
            interval=telemetry_interval,
        )

        self._lock = threading.RLock()
        self._submissions: dict[str, Submission] = {}
        self._sub_seq = 0
        #: Trial hash -> sub_id currently executing it (cross-submission
        #: in-flight dedup: never lease a hash twice concurrently).
        self._inflight: dict[str, str] = {}
        #: worker id -> {(sub_id, hash): Lease} — what dies with it.
        self._agent_leases: dict[str, dict] = {}
        #: Wall clock each in-flight (sub, hash) was dispatched at.
        self._dispatch_t: dict[tuple, float] = {}
        #: Agent name -> incarnation counter (attach-time tagging).
        self._incarnations: dict[str, int] = {}
        #: Test hook: every dispatch as (worker, sub_id, hash).
        self.dispatch_log: list[tuple] = []
        #: Test hook: freeze dispatch (agents poll idle) without
        #: stopping submissions — lets tests stage a priority race.
        self._paused = False

        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._local_procs: list = []
        self._local_deaths = 0
        self._stopping = False
        self._started = False
        self._t0 = 0.0
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "Coordinator":
        """Bind, advertise, spawn local agents, begin serving."""
        if self._started:
            raise ServiceError("coordinator already started")
        self._started = True
        self._t0 = time.time()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self._requested_port))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        write_endpoint(self.state_dir, self.host, self.port, self.name)
        accept = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        accept.start()
        tick = threading.Thread(
            target=self._tick_loop, name="service-tick", daemon=True
        )
        tick.start()
        self._threads += [accept, tick]
        for i in range(self.local_workers):
            self._spawn_local(i, defuse_chaos=False)
        with self._lock:  # the tick thread also writes telemetry
            self.telemetry.write()
        return self

    def stop(self) -> None:
        """Stop serving: agents get ``shutdown`` on their next pull,
        local processes are reaped, telemetry gets a final flush."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        deadline = time.time() + 5.0
        for proc in self._local_procs:
            proc.join(timeout=max(0.1, deadline - time.time()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        with self._lock:
            self.telemetry.write()
        try:
            (self.state_dir / ENDPOINT_FILE).unlink(missing_ok=True)
        except OSError:
            pass
        self.cache.close()

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def stopping(self) -> bool:
        return self._stopping

    @property
    def endpoint(self) -> tuple:
        if self.port is None:
            raise ServiceError("coordinator not started")
        return (self.host, self.port)

    # ------------------------------------------------------------- local pool
    def _spawn_local(self, slot: int, defuse_chaos: bool) -> None:
        from repro.service.worker import _local_agent_main

        proc = self._ctx.Process(
            target=_local_agent_main,
            args=(self.host, self.port, f"local{slot}", defuse_chaos,
                  self.trace_dir),
            daemon=True,
            name=f"service-local{slot}",
        )
        proc.start()
        proc.slot = slot
        self._local_procs.append(proc)
        self.metrics.counter("service.agent_spawns").inc()

    def _reap_local(self) -> None:
        """Respawn local agent slots whose process died.

        A death here is almost always the ``REPRO_CHAOS_KILL`` hook (or
        an OOM); the lease cleanup already happened via the socket EOF.
        The respawn *defuses* the chaos hook in the child — the env
        trigger fires on every attempt, so a respawned agent that still
        honored it would die forever and livelock the fleet.
        """
        dead = [p for p in self._local_procs if p.exitcode is not None]
        for proc in dead:
            self._local_procs.remove(proc)
            self._local_deaths += 1
            self.metrics.counter("service.local_agent_deaths").inc()
            self._spawn_local(proc.slot, defuse_chaos=True)

    # ------------------------------------------------------------ accept/tick
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            thread = threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            )
            thread.start()

    def _tick_loop(self) -> None:
        """Housekeeping: lease-deadline expiry, local-agent respawn,
        telemetry rewrites.  Runs until stop."""
        while not self._stopping:
            now = time.time()
            with self._lock:
                for sub in self._submissions.values():
                    if sub.state != "running":
                        continue
                    for h in sub.queue.expire(now):
                        self._inflight.pop(h, None)
                        self._dispatch_t.pop((sub.sub_id, h), None)
                        self.metrics.counter("service.requeues").inc()
                if not self._stopping:
                    self._reap_local()
                self._refresh_gauges()
                self.telemetry.maybe_write()
            time.sleep(self.poll)

    def _refresh_gauges(self) -> None:
        """Per-client queue depth + fleet shape, mirrored for export."""
        m = self.metrics
        depth: dict[str, int] = {}
        for sub in self._submissions.values():
            depth.setdefault(sub.client, 0)  # settled clients drop to 0
            if sub.state == "running":
                depth[sub.client] += len(sub.queue.pending)
        for client, n in depth.items():
            m.gauge(f"service.client.{client}.queue_depth").set(n)
        m.gauge("service.submissions").set(len(self._submissions))
        m.gauge("service.inflight").set(len(self._inflight))
        m.gauge("service.local_agents").set(len(self._local_procs))

    # ----------------------------------------------------------- connections
    def _serve_conn(self, conn: socket.socket) -> None:
        conn.settimeout(None)
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        worker_id: Optional[str] = None
        try:
            while True:
                try:
                    msg = recv_msg(rfile)
                except ServiceError:
                    break  # garbage on the wire: drop the connection
                if msg is None:
                    break
                if msg["type"] == "attach":
                    worker_id = self._attach(msg)
                    reply = {"type": "attached", "worker": worker_id}
                else:
                    reply = self._handle(msg)
                try:
                    send_msg(wfile, reply)
                except OSError:
                    break
                if reply.get("type") == "bye":
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass
            if worker_id is not None:
                self._agent_gone(worker_id)

    def _attach(self, msg: dict) -> str:
        name = str(msg.get("agent", "agent"))
        with self._lock:
            self._incarnations[name] = self._incarnations.get(name, 0) + 1
            worker_id = f"{name}.{self._incarnations[name]}"
            self._agent_leases[worker_id] = {}
            self.metrics.counter("service.agent_attaches").inc()
        return worker_id

    def _agent_gone(self, worker_id: str) -> None:
        """An agent's connection closed: requeue everything it held.

        Covers SIGKILLed local agents (chaos), crashed external
        workers, and network drops alike — the socket EOF *is* the
        death detector, with the lease deadline as the backstop for an
        agent that wedges while keeping the socket open.
        """
        with self._lock:
            leases = self._agent_leases.pop(worker_id, {})
            if leases:
                self.metrics.counter("service.agent_deaths").inc()
            for (sub_id, h), lease in leases.items():
                self._inflight.pop(h, None)
                self._dispatch_t.pop((sub_id, h), None)
                sub = self._submissions.get(sub_id)
                if sub is None:
                    continue
                try:
                    sub.queue.requeue(lease, reason="agent-death")
                    self.metrics.counter("service.requeues").inc()
                except LeaseExpired:
                    pass  # deadline sweep got there first

    # -------------------------------------------------------------- requests
    def _handle(self, msg: dict) -> dict:
        kind = msg["type"]
        try:
            if kind == "ping":
                return {
                    "type": "pong",
                    "version": PROTOCOL_VERSION,
                    "name": self.name,
                    "uptime": time.time() - self._t0,
                    "store": self.cache.url if self.cache.shared else "mem:",
                }
            if kind == "submit":
                return self._submit(msg)
            if kind == "status":
                return self._status(msg)
            if kind == "fetch":
                return self._fetch(msg)
            if kind == "cancel":
                return self._cancel(msg)
            if kind == "next":
                return self._next_trial(msg)
            if kind == "report":
                return self._report(msg)
            if kind == "shutdown":
                threading.Thread(target=self.stop, daemon=True).start()
                return {"type": "bye"}
            return {"type": "error", "error": f"unknown request type {kind!r}"}
        except ServiceError as exc:
            return {"type": "error", "error": str(exc)}
        except Exception as exc:  # a bad request must never kill serving
            return {"type": "error", "error": f"{type(exc).__name__}: {exc}"}

    def _submit(self, msg: dict) -> dict:
        priority = msg.get("priority", "bulk")
        if priority not in PRIORITIES:
            raise ServiceError(
                f"priority must be one of {PRIORITIES}, got {priority!r}"
            )
        spec = CampaignSpec.from_dict(msg.get("spec"))
        client = str(msg.get("client", "anon"))
        trials = spec.trials()
        now = time.time()
        with self._lock:
            if self._stopping:
                raise ServiceError("coordinator is shutting down")
            self._sub_seq += 1
            sub_id = f"sub{self._sub_seq}"
            sub_dir = self.state_dir / "subs" / sub_id
            sub_dir.mkdir(parents=True, exist_ok=True)
            # Store scan first: every hash already in the shared store
            # is a fleet-wide dedup hit, served without a lease ever
            # existing; only the rest enters the durable queue.
            records: dict[str, dict] = {}
            pending = []
            for trial in trials:
                if trial.hash in records:
                    continue  # duplicate hash within one spec
                hit = self.cache.get(trial.hash)
                if (
                    hit is not None
                    and hit.get("status") == "ok"
                    and hit.get("config") == trial.config
                ):
                    records[trial.hash] = {**hit, "cached": True}
                    self.metrics.counter("service.store_hits").inc()
                else:
                    pending.append(trial)
            sub = Submission(
                sub_id=sub_id, client=client, priority=priority, spec=spec,
                trials=trials, created=now,
                records=records, hits=len(records),
                configs={t.hash: t.config for t in trials},
                queue=LeaseQueue(
                    sub_dir / "journal.jsonl",
                    [t.hash for t in pending],
                    retry_budget=self.retry_budget,
                    backoff_base=self.backoff_base,
                    name=f"{spec.name}/{sub_id}",
                    metrics=self.metrics,
                ),
            )
            if sub.hits and sub.first_result_t is None:
                sub.first_result_t = now
                self.metrics.histogram(
                    "wall.service.first_result_seconds"
                ).observe(max(0.0, now - sub.created))
            self._submissions[sub_id] = sub
            self.metrics.counter("service.submits").inc()
            self.metrics.counter(f"service.submits.{priority}").inc()
            self._maybe_settle(sub)
            return {
                "type": "submitted",
                "sub": sub_id,
                "trials": len(trials),
                "hits": sub.hits,
                "pending": len(pending),
            }

    def _status(self, msg: dict) -> dict:
        with self._lock:
            sub_id = msg.get("sub")
            if sub_id is not None:
                sub = self._require_sub(sub_id)
                return {"type": "status", "submission": sub.status()}
            return {
                "type": "status",
                "name": self.name,
                "uptime": time.time() - self._t0,
                "submissions": [
                    s.status() for s in self._submissions.values()
                ],
                "inflight": len(self._inflight),
                "agents": sorted(self._agent_leases),
                "store": {
                    "kind": self.cache.store.kind,
                    "records": len(self.cache),
                    "hits": self.cache.hits,
                    "misses": self.cache.misses,
                },
            }

    def _fetch(self, msg: dict) -> dict:
        with self._lock:
            sub = self._require_sub(msg.get("sub"))
            if sub.state == "cancelled":
                raise ServiceError(f"{sub.sub_id} was cancelled")
            if not sub.settled:
                return {
                    "type": "error",
                    "error": f"{sub.sub_id} not settled yet",
                    "submission": sub.status(),
                }
            return {"type": "document", "sub": sub.sub_id,
                    "doc": self._document(sub)}

    def _cancel(self, msg: dict) -> dict:
        with self._lock:
            sub = self._require_sub(msg.get("sub"))
            if sub.state == "running":
                sub.state = "cancelled"
                self.metrics.counter("service.cancels").inc()
            return {"type": "cancelled", "sub": sub.sub_id,
                    "state": sub.state}

    def _require_sub(self, sub_id) -> Submission:
        sub = self._submissions.get(sub_id)
        if sub is None:
            raise ServiceError(f"unknown submission {sub_id!r}")
        return sub

    # ------------------------------------------------------------ dispatching
    def _next_trial(self, msg: dict) -> dict:
        worker = str(msg.get("worker", "?"))
        now = time.time()
        with self._lock:
            if self._stopping:
                return {"type": "shutdown"}
            if self._paused or worker not in self._agent_leases:
                return {"type": "idle"}
            # Two-level priority: all interactive submissions are
            # offered before any bulk one — preemption happens at the
            # trial boundary because agents pull one trial at a time.
            for priority in PRIORITIES:
                for sub in self._submissions.values():
                    if sub.state != "running" or sub.priority != priority:
                        continue
                    lease = sub.queue.lease(
                        worker, now, self.lease_ttl,
                        skip=self._inflight.keys(),
                    )
                    if lease is None:
                        continue
                    self._inflight[lease.trial] = sub.sub_id
                    self._agent_leases[worker][(sub.sub_id, lease.trial)] = lease
                    self._dispatch_t[(sub.sub_id, lease.trial)] = now
                    self.dispatch_log.append((worker, sub.sub_id, lease.trial))
                    self.metrics.counter("service.leases").inc()
                    return {
                        "type": "trial",
                        "sub": sub.sub_id,
                        "hash": lease.trial,
                        "config": sub.configs[lease.trial],
                        "attempt": lease.attempt,
                        "token": lease.token,
                    }
            return {"type": "idle"}

    def _report(self, msg: dict) -> dict:
        worker = str(msg.get("worker", "?"))
        record = msg.get("record")
        if not isinstance(record, dict):
            raise ServiceError("report without a record")
        h = msg.get("hash")
        sub_id = msg.get("sub")
        now = time.time()
        with self._lock:
            sub = self._submissions.get(sub_id)
            lease = self._agent_leases.get(worker, {}).pop((sub_id, h), None)
            self._inflight.pop(h, None)
            dispatch_t = self._dispatch_t.pop((sub_id, h), None)
            if sub is None or lease is None or lease.token != msg.get("token"):
                # Stale: the lease was reclaimed (deadline, presumed
                # death) and possibly re-granted.  Content-addressing
                # makes dropping it harmless.
                self.metrics.counter("service.stale_reports").inc()
                return {"type": "ack", "stale": True}
            if dispatch_t is not None:
                self.metrics.histogram("wall.trial.seconds").observe(
                    max(0.0, now - dispatch_t)
                )
            if record.get("status") == "ok":
                self.cache.put(h, {k: v for k, v in record.items()
                                   if k != "cached"})
                try:
                    sub.queue.complete(lease)
                except LeaseExpired:
                    return {"type": "ack", "stale": True}
                self._land(sub, h, {**record, "cached": False}, now)
                self._propagate(h, record, now, source=sub_id)
            else:
                try:
                    outcome = sub.queue.fail(
                        lease, record.get("error") or "failed", now
                    )
                except LeaseExpired:
                    return {"type": "ack", "stale": True}
                self.metrics.counter("service.trial_failures").inc()
                if outcome == "quarantined":
                    self.metrics.counter("service.quarantines").inc()
                    self._land(sub, h, {**record, "cached": False}, now)
            return {"type": "ack"}

    def _land(self, sub: Submission, h: str, record: dict, now: float) -> None:
        """A record reached ``sub``: store it, stamp first-result."""
        sub.records[h] = record
        if sub.first_result_t is None:
            sub.first_result_t = now
            self.metrics.histogram(
                "wall.service.first_result_seconds"
            ).observe(max(0.0, now - sub.created))
        self._maybe_settle(sub)

    def _maybe_settle(self, sub: Submission) -> None:
        if sub.state == "running" and sub.settled:
            sub.state = "done"
            self.metrics.counter("service.settled").inc()

    def _propagate(self, h: str, record: dict, now: float, source: str) -> None:
        """Event-driven dedup: a landed result completes the same hash
        in every *other* submission still waiting on it."""
        for sub in self._submissions.values():
            if sub.sub_id == source or sub.state != "running":
                continue
            state = sub.queue.states.get(h)
            if state is None or state.status != "pending":
                continue
            sub.queue.complete_external(h, reason="dedup")
            self.metrics.counter("service.dedup_completions").inc()
            self._land(sub, h, {**{k: v for k, v in record.items()
                                   if k != "cached"}, "cached": True}, now)

    # -------------------------------------------------------------- document
    def _document(self, sub: Submission) -> dict:
        """The finished campaign JSON — via :class:`CampaignRun`, so it
        is byte-identical to serial ``campaign run`` of the same spec."""
        records = [sub.records[t.hash] for t in sub.trials]
        run = CampaignRun(
            spec=sub.spec,
            trials=sub.trials,
            records=records,
            quarantined=sub.queue.quarantined,
        )
        return run.document()

    # ------------------------------------------------------------ test hooks
    def pause(self) -> None:
        """Freeze dispatch (agents see ``idle``); submissions queue up."""
        with self._lock:
            self._paused = True

    def resume(self) -> None:
        with self._lock:
            self._paused = False

    def wait_settled(self, sub_id: str, timeout: float = 60.0) -> dict:
        """Block until a submission settles (tests + CLI --wait)."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            with self._lock:
                sub = self._require_sub(sub_id)
                if sub.settled or sub.state == "cancelled":
                    return sub.status()
            time.sleep(self.poll)
        with self._lock:
            raise ServiceError(
                f"{sub_id} did not settle within {timeout}s: "
                f"{self._require_sub(sub_id).status()}"
            )
