"""`repro-bench offload`: re-derive DMAmin across machine generations.

The paper's Sec. 3.5 measurement — sweep message sizes, find where the
offloaded pingpong overtakes the CPU-copy pingpong, compare against
``DMAmin = cache / (2 x sharers)`` — run once per hardware generation:

- **nehalem-era**: the paper's Xeon E5345, KNEM kernel copy vs
  KNEM + I/OAT (the original Fig. 4 experiment);
- **modern**: the :func:`~repro.hw.presets.modern_server` preset, KNEM
  kernel copy vs the DSA-class engine (:mod:`repro.offload.dsa_lmt`).

The committed ``BENCH_offload.json`` self-checks the crossover
*direction* on each generation (CPU copy wins below the crossover,
offload wins above it) and that the two generations land on different
crossovers — the larger modern LLC pushes DMAmin up by roughly the
cache-growth factor, which is the PR's headline number.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.harness import sweep_sizes
from repro.bench.imb import imb_pingpong
from repro.bench.reporting import format_table, topology_block
from repro.core.policy import LmtConfig
from repro.hw import presets
from repro.units import KiB, MiB, fmt_size

__all__ = ["GENERATIONS", "run_offload_bench", "format_offload_doc"]

#: The generation ladder: one entry per evaluated hardware era.  Both
#: pingpong ranks bind to cores (0, 1), which share the LLC on every
#: preset here — the placement the DMAmin formula's ``sharers=2`` form
#: describes.
GENERATIONS = (
    {
        "generation": "nehalem-era",
        "machine": "xeon_e5345",
        "cpu_mode": "knem",
        "offload_mode": "knem-ioat",
        "lo": 256 * KiB,
        "hi": 8 * MiB,
    },
    {
        "generation": "modern",
        "machine": "modern_server",
        "cpu_mode": "knem",
        "offload_mode": "dsa",
        "lo": 1 * MiB,
        "hi": 48 * MiB,
    },
)

BINDINGS = (0, 1)


def _measure_generation(
    gen: dict, repetitions: int, per_octave: int
) -> dict:
    topo = getattr(presets, gen["machine"])()
    sizes = sweep_sizes(gen["lo"], gen["hi"], per_octave=per_octave)
    cpu_mib: list[float] = []
    offload_mib: list[float] = []
    for nbytes in sizes:
        for mode, out in (
            (gen["cpu_mode"], cpu_mib),
            (gen["offload_mode"], offload_mib),
        ):
            # The pin-down cache (Liu et al.) is armed on every mode so
            # repeated pins of the reused pingpong buffers amortize and
            # the comparison prices steady-state data movement, not
            # first-touch registration.
            config = LmtConfig(mode=mode, knem_reg_cache=True)
            out.append(
                imb_pingpong(
                    topo, nbytes, mode=mode, bindings=BINDINGS,
                    repetitions=repetitions, config=config,
                ).throughput_mib
            )
    # Crossover: smallest swept size from which offload wins *for good*
    # (same rule as core.autotune.find_ioat_crossover).
    crossover: Optional[int] = None
    for size, c, o in zip(sizes, cpu_mib, offload_mib):
        if o > c:
            if crossover is None:
                crossover = size
        else:
            crossover = None
    return {
        "generation": gen["generation"],
        "machine": gen["machine"],
        "topology": topology_block(topo, bindings=BINDINGS),
        "cpu_mode": gen["cpu_mode"],
        "offload_mode": gen["offload_mode"],
        "bindings": list(BINDINGS),
        "l2_bytes": topo.params.l2_bytes,
        "sizes": list(sizes),
        "cpu_mib": cpu_mib,
        "offload_mib": offload_mib,
        "measured_crossover_bytes": crossover,
        "predicted_dmamin_bytes": topo.dmamin_bytes(2),
    }


def run_offload_bench(
    repetitions: int = 4,
    per_octave: int = 2,
    generations: Optional[Sequence[dict]] = None,
) -> dict:
    """Run the generation sweep; returns the self-checking document.

    ``repetitions``/``per_octave`` shrink the sweep for smoke runs; the
    committed ``BENCH_offload.json`` uses the defaults.  The simulation
    is deterministic (no noise model is armed), so reruns reproduce the
    document byte-for-byte.
    """
    gens = [
        _measure_generation(g, repetitions, per_octave)
        for g in (generations or GENERATIONS)
    ]
    checks: dict[str, bool] = {}
    for g in gens:
        tag = g["generation"].replace("-", "_")
        crossover = g["measured_crossover_bytes"]
        checks[f"{tag}_crossover_found"] = crossover is not None
        # Direction: CPU copy wins the smallest size, offload the largest.
        checks[f"{tag}_cpu_wins_below"] = g["cpu_mib"][0] > g["offload_mib"][0]
        checks[f"{tag}_offload_wins_above"] = (
            g["offload_mib"][-1] > g["cpu_mib"][-1]
        )
    if len(gens) >= 2:
        crossings = [g["measured_crossover_bytes"] for g in gens]
        checks["generations_differ"] = (
            None not in crossings and len(set(crossings)) == len(crossings)
        )
    checks["ok"] = all(checks.values())
    return {
        "bench": "offload",
        "bindings": list(BINDINGS),
        "repetitions": repetitions,
        "per_octave": per_octave,
        "pin_down_cache": True,
        "generations": gens,
        "self_check": checks,
    }


def format_offload_doc(doc: dict) -> str:
    """Human-readable rendering of :func:`run_offload_bench` output."""
    blocks: list[str] = []
    for g in doc["generations"]:
        rows = [
            [fmt_size(s), round(c, 1), round(o, 1),
             "offload" if o > c else "cpu"]
            for s, c, o in zip(g["sizes"], g["cpu_mib"], g["offload_mib"])
        ]
        blocks.append(
            format_table(
                ["size", f"{g['cpu_mode']} MiB/s",
                 f"{g['offload_mode']} MiB/s", "winner"],
                rows,
                title=f"{g['generation']} ({g['machine']})",
            )
        )
    rows = [
        [
            g["generation"],
            fmt_size(g["l2_bytes"]),
            g["offload_mode"],
            fmt_size(g["predicted_dmamin_bytes"]),
            fmt_size(g["measured_crossover_bytes"])
            if g["measured_crossover_bytes"]
            else "beyond sweep",
        ]
        for g in doc["generations"]
    ]
    blocks.append(
        format_table(
            ["generation", "LLC", "engine", "DMAmin (formula)",
             "crossover (measured)"],
            rows,
            title="re-derived DMAmin per generation",
        )
    )
    checks = doc["self_check"]
    blocks.append(
        "self-check: "
        + " ".join(
            f"{name}={'PASS' if ok else 'FAIL'}"
            for name, ok in checks.items()
            if name != "ok"
        )
    )
    return "\n\n".join(blocks)
