"""The DSA LMT backend: large messages moved by a memory-operation engine.

Protocol shape is KNEM's (the cookie rides the ordinary Nemesis
rendezvous, the receiver drives the transfer), but the data path is a
DSA-class engine (:mod:`repro.hw.dsa`) and submission bypasses the
kernel: once both buffers are pinned, the receiver ENQCMDs batch
descriptors straight into a shared work queue — no ioctl per transfer,
one doorbell per batch.

Completion follows the machine's configured mode:

- ``"poll"``: the receiver spins on the completion record
  (``busy_poll_wait`` with the DSA poll period — CPU busy, low latency);
- ``"interrupt"``: the receiver sleeps and pays the interrupt wakeup
  latency once (CPU idle).

Like KNEM+I/OAT, the copy bypasses the caches entirely, so a DSA
transfer evicts nothing from a co-running victim's L2 — the property
the tenancy tests pin down.
"""

from __future__ import annotations

from repro.core.lmt import LmtBackend, TransferSide, busy_poll_wait
from repro.errors import LmtError
from repro.hw.dsa import DsaRequest
from repro.kernel.copy import iter_lockstep

__all__ = ["DsaLmt"]


class DsaLmt(LmtBackend):
    """Single-copy transfers through the socket's DSA engines."""

    name = "dsa"
    receiver_sends_done = True  # the engine reads the sender's pages

    # ------------------------------------------------------------ sender
    def sender_start(self, side: TransferSide):
        # Declare (pin + cookie) through the KNEM plumbing: a modern
        # stack still needs the one-time cross-process window setup.
        knem = side.world.knem_of(side.rank)
        cookie = yield from knem.send_cmd(side.core, side.views, parent=side.span)
        return {"cookie": cookie}

    def sender_on_cts(self, side: TransferSide, cts_info: dict):
        # The receiver drives the whole transfer.
        yield from ()

    # ---------------------------------------------------------- receiver
    def receiver_transfer(self, side: TransferSide, rts_info: dict):
        knem = side.world.knem_of(side.rank)
        machine = side.machine
        dsa = machine.dsa
        if dsa is None:
            raise LmtError(
                f"{machine.topo.name} has no DSA engines "
                "(params.dsa_engines == 0)"
            )
        cookie_id = rts_info.get("cookie")
        if cookie_id is None:
            raise LmtError("DSA RTS carried no cookie")
        cookie = knem.cookie(cookie_id)

        obs = side.engine.obs
        span = None
        if obs.enabled:
            span = obs.begin(
                "dsa.recv", kind="cmd", track=f"core{side.core}",
                parent=side.span, cookie=cookie_id, nbytes=side.nbytes,
            )

        # The engine reads/writes user pages: pin the receive side
        # (the send side was pinned at declare time).
        yield from knem.pin(side.core, side.views, parent=span)

        segments = []
        for dv, sv in iter_lockstep(
            list(side.views), cookie.views, machine.params.dsa_max_desc_bytes
        ):
            def move(dv=dv, sv=sv):
                dv.array[:] = sv.array

            segments.append((sv.phys, dv.phys, dv.nbytes, move))
        request = DsaRequest(
            dsa.build_descriptors(segments),
            done=side.engine.event("dsa-lmt"),
            submitter_core=side.core,
            span=span,
        )
        # User-space ENQCMD: one doorbell per batch, no syscall.
        cost = dsa.submission_cost(request)
        machine.papi.add(side.core, "CPU_BUSY", cost)
        yield machine.cores[side.core].busy(cost)
        dsa.submit(request)

        if machine.params.dsa_completion == "interrupt":
            yield request.done
            yield machine.params.dsa_interrupt_latency
        else:
            yield from busy_poll_wait(
                machine, side.core, request.done,
                quantum=10 * machine.params.dsa_poll_period,
            )
        knem.consume(cookie_id)
        obs.end(span)
        return self.name
