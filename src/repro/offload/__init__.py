"""Memory-operation offload: DSA-class engines as an LMT backend.

The paper answered "when does offloaded copy beat cache-hot CPU copy"
for a Nehalem-era I/OAT engine; this subpackage re-asks the question on
a modern machine generation.  :mod:`repro.hw.dsa` models the engine
(shared work queues, batch descriptors, poll/interrupt completion);
:class:`~repro.offload.dsa_lmt.DsaLmt` registers it in the Nemesis LMT
chooser next to knem/vmsplice/shm; :mod:`repro.offload.bench` sweeps
message size x backend x machine generation and re-derives DMAmin per
generation (``repro-bench offload`` -> ``BENCH_offload.json``).
"""

from repro.offload.bench import format_offload_doc, run_offload_bench
from repro.offload.dsa_lmt import DsaLmt

__all__ = ["DsaLmt", "run_offload_bench", "format_offload_doc"]
