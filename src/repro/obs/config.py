"""Observability configuration: the ``obs=ObsConfig(...)`` knob.

Passed to :func:`repro.mpi.world.run_mpi` /
:func:`repro.mpi.cluster.run_cluster` (or straight to
:class:`repro.sim.engine.Engine`).  A run without a config pays one
attribute check per instrumentation site and allocates nothing — same
zero-overhead contract as :class:`repro.sim.trace.Tracer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ObsConfig"]


@dataclass(frozen=True)
class ObsConfig:
    """What the run should observe and where the results go.

    spans:
        Record causal :class:`~repro.obs.spans.Span` trees (rendezvous
        handshakes, chunk copies, KNEM commands, DMA descriptors, NIC
        attempts, collective phases).
    profile:
        Arm the :class:`~repro.obs.prof.WallProfiler` flight recorder:
        wall-clock self time and call counts per engine handler,
        extent-LRU cache op, and copy chunk, published into the
        metrics registry under the ``wall.*`` namespace at finalize.
        Wall timing never feeds back into the simulation, so enabling
        it leaves timelines and sim metrics byte-identical.
    metrics:
        Absorb the run's counters (PAPI, regcache, NIC resilience,
        engine stats) into the collector's
        :class:`~repro.obs.metrics.MetricsRegistry` when the run ends.
    max_spans:
        Retention bound.  ``None`` keeps everything; a bound keeps the
        *newest* spans and counts the evictions in
        :attr:`~repro.obs.spans.ObsCollector.dropped_spans` (a dropped
        parent orphans its surviving children — bound generously).
    chrome_path / jsonl_path:
        When set, the run writes a Chrome-trace / Perfetto JSON file
        (resp. a compact JSONL span stream) on completion.
    """

    spans: bool = False
    profile: bool = False
    metrics: bool = True
    max_spans: Optional[int] = None
    chrome_path: Optional[str] = None
    jsonl_path: Optional[str] = None
