"""Per-phase sim-time attribution: where did the microseconds go?

The paper's argument is a *phase* argument — large-message cost is
copy time vs syscall time vs pinning time vs DMA time — so stored
benchmark JSON carries a ``phase_breakdown`` block: total sim-seconds
(and bytes, where meaningful) per work kind, summed over leaf spans.

Only the leaf *work* kinds are summed.  Structural kinds (``msg``,
``handshake``, ``cmd``, ``chunk``, ``attempt``, ``coll``) contain
their children's work and would double-count it.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["WORK_KINDS", "STRUCTURAL_KINDS", "phase_breakdown"]

# Leaf spans: real resource occupancy; durations are additive.
WORK_KINDS = ("copy", "syscall", "pin", "dma", "wire", "compute")

# Containers: exported as async events, excluded from attribution.
STRUCTURAL_KINDS = ("msg", "coll", "handshake", "cmd", "chunk", "attempt")


def phase_breakdown(spans: Iterable) -> dict:
    """Sum closed leaf-span durations by kind.

    Returns ``{kind: {"seconds": s, "count": n, "nbytes": b}}`` for
    each work kind that appears, plus a ``"total"`` entry covering all
    work kinds.  ``nbytes`` sums the spans' ``nbytes`` attrs (0 for
    kinds that carry none, e.g. ``syscall``).
    """
    by_kind: dict = {
        k: {"seconds": 0.0, "count": 0, "nbytes": 0} for k in WORK_KINDS
    }
    for span in spans:
        if span.kind not in by_kind or span.end is None:
            continue
        entry = by_kind[span.kind]
        entry["seconds"] += span.end - span.start
        entry["count"] += 1
        entry["nbytes"] += int(span.attrs.get("nbytes") or 0)
    out = {k: v for k, v in by_kind.items() if v["count"]}
    out["total"] = {
        "seconds": sum(v["seconds"] for v in out.values()),
        "count": sum(v["count"] for v in out.values()),
        "nbytes": sum(v["nbytes"] for v in out.values()),
    }
    return out
