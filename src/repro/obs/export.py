"""Span exporters: Chrome trace-event / Perfetto JSON, and JSONL.

The Chrome format (loadable at ``ui.perfetto.dev`` or
``chrome://tracing``) models one process with one thread ("track") per
simulated resource: ``core0``..``coreN``, ``dma.ch0``.., ``nic0``..,
``wire``.  Two event styles:

* leaf *work* spans (:data:`~repro.obs.phases.WORK_KINDS`) become
  synchronous ``ph="B"``/``ph="E"`` pairs — they occupy a resource and
  nest properly;
* *structural* spans (``msg``/``coll``/``handshake``/``cmd``/
  ``chunk``/``attempt``) become async ``ph="b"``/``ph="e"`` events
  keyed by ``id`` — two messages can be open on a core at once (a
  ``Sendrecv``) and must not corrupt the B/E stack;
* ``instant`` spans become ``ph="i"`` markers.

Timestamps are sim-time converted to integer-ish microseconds.  The
``args`` of each event carry the span attrs plus ``span_id`` /
``parent_id`` / ``trace_id``, so causality survives the export.

:func:`validate_chrome_trace` is the schema check CI runs on the smoke
trace: monotonic timestamps, per-track B/E pairs that balance, async
begin/end matched by id.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, List

from repro.errors import SimulationError
from repro.obs.phases import WORK_KINDS

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "validate_chrome_trace",
]

_PID = 1
_SEC_TO_US = 1e6

# Track lanes sort by resource class, then by instance number.
_TRACK_ORDER = {"core": 0, "dma": 1, "nic": 2, "wire": 3}


def _track_key(track: str):
    m = re.match(r"[a-z]+", track)
    cls = m.group(0) if m else track
    nums = re.findall(r"\d+", track)
    idx = int(nums[0]) if nums else 0
    return (_TRACK_ORDER.get(cls, 9), cls, idx, track)


def _tid_map(spans: Iterable) -> dict:
    tracks = sorted({s.track for s in spans}, key=_track_key)
    return {track: tid for tid, track in enumerate(tracks)}


def _args(span) -> dict:
    args = {"span_id": span.span_id, "trace_id": span.trace_id}
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    args.update(span.attrs)
    return args


def chrome_trace(spans: Iterable) -> dict:
    """Build the ``{"traceEvents": [...]}`` document for a span list.

    Open spans (``end is None`` — a run that stopped at ``until=``)
    are skipped rather than exported half-formed.
    """
    spans = list(spans)
    tids = _tid_map(spans)
    events: List[dict] = []
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )

    timed: List[tuple] = []
    for span in spans:
        tid = tids[span.track]
        ts = span.start * _SEC_TO_US
        base = {"pid": _PID, "tid": tid, "name": span.name, "cat": span.kind}
        if span.kind == "instant":
            timed.append(
                (ts, 1, span.span_id, 0, {**base, "ph": "i", "ts": ts, "s": "t",
                                          "args": _args(span)})
            )
            continue
        if span.end is None:
            continue
        end_ts = span.end * _SEC_TO_US
        # Ends sort before begins at equal ts so zero-gap back-to-back
        # spans on one track keep a balanced B/E stack — except a
        # zero-duration span, whose end must stay after its own begin
        # (final tuple slot breaks the tie within one span).
        end_pri = 0 if end_ts > ts else 1
        if span.kind in WORK_KINDS:
            timed.append(
                (ts, 1, span.span_id, 0, {**base, "ph": "B", "ts": ts,
                                          "args": _args(span)})
            )
            timed.append(
                (end_ts, end_pri, span.span_id, 1,
                 {**base, "ph": "E", "ts": end_ts})
            )
        else:
            ident = f"0x{span.span_id:x}"
            timed.append(
                (ts, 1, span.span_id, 0, {**base, "ph": "b", "ts": ts,
                                          "id": ident, "args": _args(span)})
            )
            timed.append(
                (end_ts, end_pri, span.span_id, 1,
                 {**base, "ph": "e", "ts": end_ts, "id": ident})
            )
    timed.sort(key=lambda item: item[:4])
    events.extend(ev for *_, ev in timed)
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(spans: Iterable, path) -> None:
    doc = chrome_trace(spans)
    with open(path, "w") as fh:
        json.dump(doc, fh)


def jsonl_lines(spans: Iterable) -> Iterable[str]:
    """Compact one-span-per-line stream (closed and open spans alike)."""
    for span in spans:
        yield json.dumps(
            {
                "span_id": span.span_id,
                "trace_id": span.trace_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "kind": span.kind,
                "track": span.track,
                "start": span.start,
                "end": span.end,
                "attrs": span.attrs,
            },
            sort_keys=True,
        )


def write_jsonl(spans: Iterable, path) -> None:
    with open(path, "w") as fh:
        for line in jsonl_lines(spans):
            fh.write(line + "\n")


def validate_chrome_trace(doc: dict) -> dict:
    """Schema-check an exported document; raise SimulationError on violation.

    Checks: a ``traceEvents`` list exists; timestamps are finite,
    non-negative, and globally monotonic in list order; every sync
    ``B`` has a matching ``E`` on the same track with depth never
    going negative and ending at zero; every async ``b`` has exactly
    one matching ``e`` per id.  Returns summary stats for smoke-test
    logs.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise SimulationError("trace has no traceEvents list")

    last_ts = None
    depth: dict = {}
    open_async: dict = {}
    counts = {"B": 0, "E": 0, "b": 0, "e": 0, "i": 0, "M": 0}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in counts:
            raise SimulationError(f"event {i}: unknown ph {ph!r}")
        counts[ph] += 1
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise SimulationError(f"event {i}: bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            raise SimulationError(
                f"event {i}: ts {ts} < previous {last_ts} (not monotonic)"
            )
        last_ts = ts
        tid = ev.get("tid")
        if ph == "B":
            depth[tid] = depth.get(tid, 0) + 1
        elif ph == "E":
            depth[tid] = depth.get(tid, 0) - 1
            if depth[tid] < 0:
                raise SimulationError(f"event {i}: E without B on tid {tid}")
        elif ph == "b":
            key = (ev.get("cat"), ev.get("id"))
            open_async[key] = open_async.get(key, 0) + 1
        elif ph == "e":
            key = (ev.get("cat"), ev.get("id"))
            if not open_async.get(key):
                raise SimulationError(f"event {i}: async e without b for {key}")
            open_async[key] -= 1
    unbalanced = {tid: d for tid, d in depth.items() if d}
    if unbalanced:
        raise SimulationError(f"unmatched B events on tids {unbalanced}")
    dangling = {k: n for k, n in open_async.items() if n}
    if dangling:
        raise SimulationError(f"unmatched async b events: {dangling}")
    return {
        "events": len(events),
        "tracks": counts["M"] // 2,
        "sync_pairs": counts["B"],
        "async_pairs": counts["b"],
        "instants": counts["i"],
    }
