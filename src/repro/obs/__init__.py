"""repro.obs — causal spans, unified metrics, and trace export.

The observability layer for the whole stack.  Three pieces:

* :mod:`repro.obs.spans` — :class:`Span` trees over sim-time, owned by
  an :class:`ObsCollector` attached to every engine as ``engine.obs``;
* :mod:`repro.obs.metrics` — one :class:`MetricsRegistry` absorbing
  PAPI, regcache, NIC-resilience, fault, and engine counters;
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON and JSONL
  exporters plus the CI schema validator;
* :mod:`repro.obs.phases` — per-phase (copy/syscall/pin/dma/wire)
  sim-time attribution for benchmark JSON;
* :mod:`repro.obs.prof` — the wall-clock flight recorder profiling
  the harness itself (engine dispatch, cache ops, copy chunks) into
  the ``wall.*`` metric namespace and flamegraph collapsed stacks.

Enable with ``run_mpi(..., obs=ObsConfig(spans=True))`` or the
``repro.bench.cli trace`` subcommand.
"""

from repro.obs.config import ObsConfig
from repro.obs.metrics import (
    WALL_PREFIX,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.phases import STRUCTURAL_KINDS, WORK_KINDS, phase_breakdown
from repro.obs.prof import SUBSYSTEMS, WallProfiler
from repro.obs.spans import ObsCollector, Span, SpanContext
from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "ObsConfig",
    "ObsCollector",
    "Span",
    "SpanContext",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "WALL_PREFIX",
    "WallProfiler",
    "SUBSYSTEMS",
    "WORK_KINDS",
    "STRUCTURAL_KINDS",
    "phase_breakdown",
    "chrome_trace",
    "jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
    "validate_chrome_trace",
]
