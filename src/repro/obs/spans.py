"""Causal spans over simulated time, and the collector that owns them.

A :class:`Span` is one interval of sim-time with a *parent link*: the
rendezvous send that caused the CTS wait that caused the KNEM cookie
that caused each DMA descriptor.  Because every layer threads its
parent explicitly (packet fields, ``TransferSide.span``,
``DmaRequest.span``, ``NicRequest.span``, ``parent=`` kwargs), one
message's journey through the stack is a single connected tree rather
than a pile of flat :class:`~repro.sim.trace.TraceRecord` lines.

The :class:`ObsCollector` is the per-engine owner of spans and the
:class:`~repro.obs.metrics.MetricsRegistry`.  Disabled (the default),
``collector.enabled`` is ``False`` and every instrumentation site
skips span construction entirely — the same zero-overhead contract as
``engine.tracer``.

Span taxonomy (``Span.kind``):

========== ============================================================
kind       meaning / export style
========== ============================================================
``msg``    one point-to-point message (root of the tree)     [async]
``coll``   one collective call on one rank                   [async]
``handshake`` RTS->CTS / transfer->DONE waits                [async]
``cmd``    a device command (KNEM declare/recv, RDMA write)  [async]
``chunk``  one pipelined chunk of an LMT transfer            [async]
``attempt`` one NIC transmission attempt (retries=siblings)  [async]
``copy``   CPU memcpy work on a core                         [sync B/E]
``syscall`` kernel entry/exit cost on a core                 [sync B/E]
``pin``    page pinning (get_user_pages / NIC register)      [sync B/E]
``dma``    one DMA descriptor on an I/OAT channel            [sync B/E]
``wire``   one descriptor's flight time on the fabric        [sync B/E]
``compute`` application compute (stream_access)              [sync B/E]
========== ============================================================

"sync" kinds are leaf *work* — they nest properly per track and are
what :func:`repro.obs.phases.phase_breakdown` sums.  "async" kinds are
structure; they may overlap arbitrarily on a track (a ``Sendrecv``
holds a send and a receive open on one core at once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanContext", "ObsCollector"]


@dataclass(frozen=True)
class SpanContext:
    """The durable identity of a span: what children link against.

    Kept separate from :class:`Span` so producers can hand a parent
    reference across process/packet boundaries without exposing the
    mutable record (and so a bounded collector can drop the record
    while links stay meaningful).
    """

    span_id: int
    trace_id: int


@dataclass
class Span:
    """One interval of sim-time in the causal tree.

    ``start``/``end`` are engine sim-time seconds (``end is None``
    while open).  ``track`` names the resource lane for exporters:
    ``core0``..``coreN``, ``dma.ch0``.., ``nic0``.., ``wire``.
    """

    span_id: int
    trace_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    track: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.span_id, self.trace_id)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} (id={self.span_id}) still open")
        return self.end - self.start


def _span_context(parent: Any) -> Optional[SpanContext]:
    """Accept a Span, a SpanContext, or None as a parent reference."""
    if parent is None:
        return None
    if isinstance(parent, SpanContext):
        return parent
    return parent.context


class ObsCollector:
    """Owns a run's spans and metrics; attached to the engine as ``engine.obs``.

    Producers call the pattern::

        span = None
        if obs.enabled:
            span = obs.begin("knem.recv", kind="cmd", track=f"core{core}",
                             parent=parent, nbytes=total)
        ...
        obs.end(span, status="ok")

    ``begin`` returns ``None`` when disabled and ``end``/``annotate``
    no-op on ``None``, so call sites never branch twice.

    Retention: with ``config.max_spans`` set, the *newest* spans are
    kept and :attr:`dropped_spans` counts evictions.  A dropped parent
    orphans its surviving children in the exported tree (the parent
    link still names its id).  Open spans mutate in place, so an open
    span that is bounded out is still closed correctly by ``end`` —
    only its record is gone from :meth:`spans`.
    """

    def __init__(self, config=None, clock: Optional[Callable[[], float]] = None):
        from repro.obs.config import ObsConfig
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.prof import WallProfiler

        self.config = config if config is not None else ObsConfig()
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.enabled: bool = bool(self.config.spans)
        self.metrics = MetricsRegistry()
        #: Wall-clock flight recorder (:mod:`repro.obs.prof`); inert
        #: unless ``config.profile`` armed it.  Sim-time and wall-time
        #: observability share this one collector so ``wall.*`` metrics
        #: land beside the simulated ones at finalize.
        self.prof = WallProfiler(enabled=bool(self.config.profile))
        self._spans: deque = deque(maxlen=self.config.max_spans)
        self.dropped_spans = 0
        self._next_span_id = 0
        self._next_trace_id = 0
        self.finalized = False

    # -------------------------------------------------------- attach
    @classmethod
    def attach(cls, obj, clock: Callable[[], float]) -> "ObsCollector":
        """Coerce an ``obs=`` argument into a collector bound to ``clock``.

        Accepts ``None`` (inert collector), an
        :class:`~repro.obs.config.ObsConfig`, or a ready-made
        collector (rebinds its clock to the new engine).
        """
        if isinstance(obj, cls):
            obj.clock = clock
            return obj
        collector = cls(config=obj, clock=clock)
        return collector

    # --------------------------------------------------------- emit
    def begin(
        self,
        name: str,
        kind: str,
        track: str,
        parent: Any = None,
        trace_id: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Open a span now; returns ``None`` when spans are disabled.

        A span with no parent and no explicit ``trace_id`` starts a new
        trace (one trace == one message/collective tree).
        """
        if not self.enabled:
            return None
        ctx = _span_context(parent)
        if trace_id is None:
            trace_id = ctx.trace_id if ctx is not None else self._new_trace_id()
        span = Span(
            span_id=self._new_span_id(),
            trace_id=trace_id,
            parent_id=ctx.span_id if ctx is not None else None,
            name=name,
            kind=kind,
            track=track,
            start=self.clock(),
            attrs=attrs,
        )
        self._store(span)
        return span

    def end(self, span: Optional[Span], **attrs: Any) -> None:
        """Close ``span`` now; no-op on ``None`` (the disabled path)."""
        if span is None:
            return
        span.end = self.clock()
        if attrs:
            span.attrs.update(attrs)

    def instant(
        self,
        name: str,
        track: str,
        parent: Any = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """A zero-duration marker (retransmit fired, packet delivered)."""
        span = self.begin(name, kind="instant", track=track, parent=parent, **attrs)
        self.end(span)
        return span

    def annotate(self, span: Optional[Span], **attrs: Any) -> None:
        if span is None:
            return
        span.attrs.update(attrs)

    def _new_span_id(self) -> int:
        self._next_span_id += 1
        return self._next_span_id

    def _new_trace_id(self) -> int:
        self._next_trace_id += 1
        return self._next_trace_id

    def _store(self, span: Span) -> None:
        if self._spans.maxlen is not None and len(self._spans) == self._spans.maxlen:
            self.dropped_spans += 1
        self._spans.append(span)

    # ------------------------------------------------------- access
    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def roots(self) -> List[Span]:
        """Spans whose parent is absent from retention (tree roots)."""
        present = {s.span_id for s in self._spans}
        return [s for s in self._spans if s.parent_id not in present]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def trace(self, trace_id: int) -> List[Span]:
        return [s for s in self._spans if s.trace_id == trace_id]

    def find(self, name: str) -> List[Span]:
        return [s for s in self._spans if s.name == name]

    def iter_descendants(self, span: Span) -> Iterator[Span]:
        """Depth-first walk below ``span`` (excluding it)."""
        stack = self.children(span)
        while stack:
            node = stack.pop()
            yield node
            stack.extend(self.children(node))

    # ----------------------------------------------------- finalize
    def finalize(self, world=None) -> "ObsCollector":
        """End-of-run hook: absorb metrics, write configured exports.

        Called by ``run_mpi``/``run_cluster``; idempotent per world
        (absorption replaces values), and the file exports rewrite.
        """
        if self.config.metrics and world is not None:
            self.metrics.absorb_world(world)
            if self.enabled:
                self.metrics.absorb_spans(self._spans)
        if self.dropped_spans:
            self.metrics.counter("obs.dropped_spans").set(self.dropped_spans)
        if self.prof.enabled:
            self.prof.publish(self.metrics)
        if self.config.chrome_path:
            self.write_chrome_trace(self.config.chrome_path)
        if self.config.jsonl_path:
            self.write_jsonl(self.config.jsonl_path)
        self.finalized = True
        return self

    # ------------------------------------------------- conveniences
    def chrome_trace(self) -> dict:
        from repro.obs.export import chrome_trace

        return chrome_trace(self.spans)

    def write_chrome_trace(self, path) -> None:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(self.spans, path)

    def write_jsonl(self, path) -> None:
        from repro.obs.export import write_jsonl

        write_jsonl(self.spans, path)

    def phase_breakdown(self) -> dict:
        from repro.obs.phases import phase_breakdown

        return phase_breakdown(self.spans)
