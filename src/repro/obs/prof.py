"""The wall-clock flight recorder: profiling the harness itself.

Everything else in :mod:`repro.obs` observes *simulated* time; this
module observes the *simulator* — where the host's wall-clock
microseconds go while the event loop runs.  The ROADMAP's "10x faster
engine" item is blocked on exactly this attribution: engine dispatch
vs extent-LRU cache ops vs per-chunk copy accounting.

Design constraints (the same contract as spans and the tracer):

* **off = free** — with profiling disabled every instrumentation site
  pays one attribute load and a falsy branch, allocates nothing, and
  never calls ``perf_counter``;
* **on = harmless** — wall timing never feeds back into simulated
  decisions, so timelines, trial content hashes, and every sim-time
  metric are byte-identical with profiling on or off (pinned by
  ``tests/obs/test_prof.py`` and the campaign determinism tests);
* **exclusive attribution** — the profiler keeps a frame stack and
  subtracts child time from parents, so per-key seconds are *self*
  time and subsystem shares sum to the profiled total instead of
  double-counting nested work (a cache sweep inside a copy chunk
  inside an engine dispatch counts once, as cache time).

Keys are dotted, and the first dotted component is the *subsystem*:
``engine.dispatch.<handler>`` (one key per callback qualname),
``cache.access`` / ``cache.peek`` / ``cache.invalidate`` /
``cache.downgrade``, ``copy.chunk`` / ``copy.move`` /
``copy.stream``.  Anything else rolls up into ``other``.

Published metrics live under the ``wall.*`` namespace (see
:data:`repro.obs.metrics.WALL_PREFIX`): they are *expected* to differ
between runs and hosts, and every determinism comparison must exclude
them — :meth:`~repro.obs.metrics.MetricsRegistry.sim_snapshot` is the
documented way to do that.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["WallProfiler", "SUBSYSTEMS"]

#: Subsystem roll-up order for wall-share reporting.  Keys whose first
#: dotted component is not listed here are attributed to ``other``.
SUBSYSTEMS = ("engine", "cache", "copy")


class WallProfiler:
    """Low-overhead exclusive wall-time accumulator with a frame stack.

    Frames are plain lists ``[key, path, t0, child_seconds]`` — the
    cheapest mutable record Python has.  ``push`` returns the frame
    (or ``None`` when disabled) and ``pop`` closes it; call sites guard
    with ``if prof.enabled:`` so the disabled path never constructs
    anything.
    """

    __slots__ = (
        "enabled",
        "clock",
        "seconds",
        "calls",
        "collapsed",
        "_stack",
        "_fn_keys",
    )

    def __init__(
        self,
        enabled: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.enabled = bool(enabled)
        self.clock = clock
        #: Exclusive (self) wall seconds per key.
        self.seconds: dict[str, float] = {}
        #: Call counts per key.
        self.calls: dict[str, int] = {}
        #: Collapsed-stack self seconds per ``;``-joined frame path
        #: (flamegraph food; see :meth:`collapsed_lines`).
        self.collapsed: dict[str, float] = {}
        self._stack: list[list] = []
        self._fn_keys: dict = {}

    # -------------------------------------------------------- frames
    def push(self, key: str) -> Optional[list]:
        """Open a frame for ``key``; returns the frame to pass to
        :meth:`pop` (``None`` when disabled)."""
        if not self.enabled:
            return None
        stack = self._stack
        path = f"{stack[-1][1]};{key}" if stack else key
        frame = [key, path, self.clock(), 0.0]
        stack.append(frame)
        return frame

    def pop(self, frame: Optional[list]) -> None:
        """Close ``frame``; no-op on ``None`` (the disabled path)."""
        if frame is None:
            return
        key, path, t0, child = frame
        elapsed = self.clock() - t0
        self._stack.pop()
        self_seconds = elapsed - child
        if self_seconds < 0.0:  # clock granularity jitter
            self_seconds = 0.0
        self.seconds[key] = self.seconds.get(key, 0.0) + self_seconds
        self.calls[key] = self.calls.get(key, 0) + 1
        self.collapsed[path] = self.collapsed.get(path, 0.0) + self_seconds
        if self._stack:
            self._stack[-1][3] += elapsed

    def handler_key(self, fn) -> str:
        """The dispatch key for an engine callback (memoized).

        Bound methods share their underlying function object, so the
        memo stays small (one entry per callback *kind*, not per call).
        """
        f = getattr(fn, "__func__", fn)
        try:
            key = self._fn_keys.get(f)
        except TypeError:  # unhashable callable — build the key each time
            return f"engine.dispatch.{type(fn).__name__}"
        if key is None:
            qualname = getattr(f, "__qualname__", None) or type(fn).__name__
            key = f"engine.dispatch.{qualname}"
            self._fn_keys[f] = key
        return key

    # ------------------------------------------------------- reports
    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def subsystem_seconds(self) -> dict[str, float]:
        """Exclusive seconds rolled up by first dotted key component;
        unknown subsystems land in ``other``."""
        out = {name: 0.0 for name in SUBSYSTEMS}
        out["other"] = 0.0
        for key, secs in self.seconds.items():
            head = key.split(".", 1)[0]
            out[head if head in out else "other"] += secs
        return out

    def shares(self, wall_seconds: Optional[float] = None) -> dict[str, float]:
        """Per-subsystem wall shares.

        Relative to ``wall_seconds`` when given (the workload's total
        wall time, so un-instrumented code shows up as ``other``);
        otherwise relative to the profiled total.  All-zero input
        yields all-zero shares.
        """
        subs = self.subsystem_seconds()
        profiled = sum(subs.values())
        denom = wall_seconds if wall_seconds else profiled
        if denom <= 0.0:
            return {name: 0.0 for name in subs}
        if wall_seconds:
            subs["other"] += max(0.0, wall_seconds - profiled)
        return {name: secs / denom for name, secs in subs.items()}

    def publish(self, metrics) -> None:
        """Write the recording into a
        :class:`~repro.obs.metrics.MetricsRegistry` under ``wall.*``.

        Per-key ``wall.<key>.seconds`` / ``wall.<key>.calls`` counters,
        subsystem totals ``wall.subsystem.<name>.seconds``, and the
        grand total ``wall.total_seconds`` — all host-dependent by
        nature and therefore excluded from
        :meth:`~repro.obs.metrics.MetricsRegistry.sim_snapshot`.
        """
        for key, secs in self.seconds.items():
            metrics.counter(f"wall.{key}.seconds").set(secs)
            metrics.counter(f"wall.{key}.calls").set(self.calls[key])
        for name, secs in self.subsystem_seconds().items():
            metrics.counter(f"wall.subsystem.{name}.seconds").set(secs)
        metrics.counter("wall.total_seconds").set(self.total_seconds)

    def collapsed_lines(self, prefix: str = "") -> list[str]:
        """Flamegraph collapsed-stack lines: ``path count`` with the
        count in integer microseconds of *self* time (sorted by path so
        output is stable).  ``prefix`` prepends a root frame (e.g. the
        workload name) to every path."""
        out = []
        for path in sorted(self.collapsed):
            us = int(round(self.collapsed[path] * 1e6))
            full = f"{prefix};{path}" if prefix else path
            out.append(f"{full} {us}")
        return out

    def merge(self, other: "WallProfiler") -> "WallProfiler":
        """Fold another recording into this one (suite aggregation)."""
        for key, secs in other.seconds.items():
            self.seconds[key] = self.seconds.get(key, 0.0) + secs
            self.calls[key] = self.calls.get(key, 0) + other.calls[key]
        for path, secs in other.collapsed.items():
            self.collapsed[path] = self.collapsed.get(path, 0.0) + secs
        return self

    def to_dict(self) -> dict:
        """JSON/pickle-friendly recording (crosses the worker-pool
        boundary; feed back in with :meth:`merge_dict`)."""
        return {
            "seconds": dict(self.seconds),
            "calls": dict(self.calls),
            "collapsed": dict(self.collapsed),
        }

    def merge_dict(self, payload: dict) -> "WallProfiler":
        """Fold a :meth:`to_dict` recording into this one."""
        for key, secs in payload.get("seconds", {}).items():
            self.seconds[key] = self.seconds.get(key, 0.0) + secs
        for key, count in payload.get("calls", {}).items():
            self.calls[key] = self.calls.get(key, 0) + count
        for path, secs in payload.get("collapsed", {}).items():
            self.collapsed[path] = self.collapsed.get(path, 0.0) + secs
        return self
