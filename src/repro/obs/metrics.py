"""The unified metrics registry: counters, gauges, log2 histograms.

One namespace for every number the stack already maintains — per-core
:class:`~repro.hw.counters.Papi` events, registration-cache hit/miss
stats, NIC resilience counters, fault-injection counts, engine event
totals — so stored benchmark JSON and ad-hoc analysis read a single
``MetricsRegistry.snapshot()`` instead of spelunking five objects.

Absorption is pull-based: :meth:`MetricsRegistry.absorb_world` reads
the authoritative sources once, at the end of a run.  The hot paths
keep their existing plain-integer counters; nothing in the simulation
pays for the registry until snapshot time.  ``BYTES_COPIED`` /
``DMA_BYTES`` (and every other PAPI event) therefore match the
:class:`~repro.hw.counters.Papi` readings *exactly* — they are the
same numbers, summed across cores and machines.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.errors import SimulationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "WALL_PREFIX"]

#: Namespace convention: metric names starting with this prefix carry
#: *wall-clock* (host) measurements — profiler self times, fleet trial
#: latencies, journal fsync latencies.  They legitimately differ
#: between two runs of the same seeded spec, so every determinism
#: comparison must use :meth:`MetricsRegistry.sim_snapshot`, which
#: excludes them; everything else in the registry is simulated-time
#: data and must replay byte-identically.
WALL_PREFIX = "wall."


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise SimulationError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def set(self, value: float) -> None:
        """Absorb an externally-maintained total (replaces the value)."""
        self.value = value


class Gauge:
    """A point-in-time value (may go up or down)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Distribution with fixed log2 size buckets.

    An observation ``v`` lands in the bucket whose upper bound is the
    smallest power of two >= ``v`` (bucket key = that exponent).
    Works for byte counts and for sub-second durations alike (negative
    exponents for values < 1).
    """

    __slots__ = ("name", "count", "total", "vmin", "vmax", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self.buckets: dict[int, int] = {}

    @staticmethod
    def bucket_of(value: float) -> int:
        """Exponent ``e`` such that ``2**(e-1) < value <= 2**e``."""
        if value <= 0:
            return 0
        return math.ceil(math.log2(value)) if value > 0 else 0

    def observe(self, value: float) -> None:
        if value < 0:
            raise SimulationError(f"histogram {self.name}: negative value {value}")
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)
        e = self.bucket_of(value)
        self.buckets[e] = self.buckets.get(e, 0) + 1

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "buckets": {f"le_2^{e}": n for e, n in sorted(self.buckets.items())},
        }

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0..1) from the log2 buckets.

        Linear interpolation inside the bucket that holds the target
        rank, clamped to the observed ``[min, max]`` so coarse buckets
        never report values outside the data.  ``None`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"histogram {self.name}: quantile {q} not in [0, 1]")
        if not self.count:
            return None
        rank = q * self.count
        seen = 0.0
        for e in sorted(self.buckets):
            n = self.buckets[e]
            if seen + n >= rank:
                lo = 2.0 ** (e - 1)
                hi = 2.0**e
                frac = (rank - seen) / n
                value = lo + frac * (hi - lo)
                return min(max(value, self.vmin), self.vmax)
            seen += n
        return self.vmax


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------ instruments
    def counter(self, name: str) -> Counter:
        self._check_name(name, self._gauges, self._histograms)
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        self._check_name(name, self._counters, self._histograms)
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        self._check_name(name, self._counters, self._gauges)
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    @staticmethod
    def _check_name(name: str, *others: dict) -> None:
        for other in others:
            if name in other:
                raise SimulationError(
                    f"metric {name!r} already registered with a different type"
                )

    # -------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """Every instrument's current value, sorted by name.

        Counters and gauges render as plain numbers; histograms as
        ``{count, sum, min, max, buckets}`` dicts.
        """
        out: dict = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].value
        for name in sorted(self._histograms):
            out[name] = self._histograms[name].snapshot()
        return out

    def sim_snapshot(self) -> dict:
        """:meth:`snapshot` minus the ``wall.*`` namespace.

        This is the determinism surface: two seeded runs of the same
        spec must produce *identical* ``sim_snapshot()`` dicts whether
        or not profiling was armed, while the excluded wall metrics
        are free to differ (they measure the host, not the model).
        """
        return {
            name: value
            for name, value in self.snapshot().items()
            if not name.startswith(WALL_PREFIX)
        }

    def iter_instruments(self):
        """Yield ``(kind, instrument)`` pairs sorted by name per kind
        (``kind`` in {"counter", "gauge", "histogram"}) — the export
        surface for renderers that need live objects (e.g. Prometheus
        text exposition with histogram quantiles)."""
        for name in sorted(self._counters):
            yield "counter", self._counters[name]
        for name in sorted(self._gauges):
            yield "gauge", self._gauges[name]
        for name in sorted(self._histograms):
            yield "histogram", self._histograms[name]

    # ------------------------------------------------------ absorption
    def absorb_world(self, world) -> "MetricsRegistry":
        """Pull the authoritative counters of a finished run.

        ``world`` is an :class:`~repro.mpi.world.MpiWorld` (or
        :class:`~repro.mpi.cluster.ClusterWorld`; duck-typed).  Safe to
        call repeatedly — absorbed values replace, never accumulate.
        Returns self for chaining.
        """
        from repro.hw.counters import EVENTS

        cluster = getattr(world, "cluster", None)
        machines = list(cluster.machines) if cluster is not None else [world.machine]

        # PAPI: the exact per-event totals, summed over cores/machines.
        for event in EVENTS:
            self.counter(event).set(sum(m.papi.total(event) for m in machines))

        engine = world.engine
        self.counter("engine.events_executed").set(engine.events_executed)
        self.gauge("sim.elapsed_seconds").set(engine.now)

        # I/OAT engines.
        self.counter("dma.engine_bytes").set(
            sum(m.dma.bytes_copied for m in machines)
        )
        self.counter("dma.descriptors").set(
            sum(m.dma.descriptors_processed for m in machines)
        )

        # DSA-class memory-operation engines (modern presets only — the
        # guard keeps legacy snapshots free of the keys, so seeded
        # legacy runs stay byte-identical).
        dsas = [m.dsa for m in machines if getattr(m, "dsa", None) is not None]
        if dsas:
            self.counter("dsa.engine_bytes").set(
                sum(d.bytes_copied for d in dsas)
            )
            self.counter("dsa.descriptors").set(
                sum(d.descriptors_processed for d in dsas)
            )
            self.counter("dsa.batches").set(
                sum(d.batches_submitted for d in dsas)
            )

        # KNEM devices and their (optional) registration caches.
        knems = list(getattr(world, "knems", None) or [world.knem])
        self.counter("knem.copies_completed").set(
            sum(k.copies_completed for k in knems)
        )
        regcaches = [k.reg_cache for k in knems if k.reg_cache is not None]

        # Fabric: NICs, their pin-down caches, fault injections.
        fabric = getattr(cluster, "fabric", None)
        nics = list(getattr(fabric, "nics", []))
        regcaches += [n.regcache for n in nics]
        if nics:
            for attr in (
                "bytes_tx",
                "bytes_rx",
                "requests_tx",
                "retransmits",
                "rx_duplicates",
                "rx_corrupt_discards",
                "rx_incomplete_discards",
                "retries_exhausted",
                "eager_rdma_sends",
                "eager_rdma_fallbacks",
            ):
                self.counter(f"nic.{attr}").set(sum(getattr(n, attr) for n in nics))
            self.gauge("nic.backoff_seconds").set(
                sum(n.backoff_seconds for n in nics)
            )
        faults = getattr(fabric, "faults", None)
        if faults is not None:
            for key, value in faults.counters().items():
                self.counter(f"faults.{key}").set(value)

        if regcaches:
            self._absorb_regcaches(regcaches)

        # Nemesis endpoints and LMT concurrency.
        self.counter("mpi.eager_received").set(
            sum(ep.eager_received for ep in world.endpoints)
        )
        self.counter("mpi.rndv_received").set(
            sum(ep.rndv_received for ep in world.endpoints)
        )
        self.gauge("mpi.max_concurrent_lmts").set(world.max_concurrent_lmts)
        return self

    def _absorb_regcaches(self, caches: Iterable) -> None:
        caches = list(caches)
        hits = sum(c.hits for c in caches)
        misses = sum(c.misses for c in caches)
        self.counter("regcache.hits").set(hits)
        self.counter("regcache.misses").set(misses)
        self.counter("regcache.evictions").set(sum(c.evictions for c in caches))
        # Exactness invariant: bytes_pinned is PAGE_SIZE times the page
        # counts the callers charged — intranode (KNEM cache armed) it
        # must equal PAGES_PINNED * PAGE_SIZE from the PAPI readings.
        self.counter("regcache.bytes_pinned").set(
            sum(c.bytes_pinned for c in caches)
        )
        self.gauge("regcache.entries").set(sum(c.entries for c in caches))
        self.gauge("regcache.hit_rate").set(
            hits / (hits + misses) if hits + misses else 0.0
        )

    def absorb_spans(self, spans) -> "MetricsRegistry":
        """Feed span durations/sizes into per-kind histograms."""
        from repro.obs.phases import WORK_KINDS

        for span in spans:
            if span.kind not in WORK_KINDS or span.end is None:
                continue
            self.histogram(f"span.{span.kind}.seconds").observe(
                span.end - span.start
            )
            nbytes = span.attrs.get("nbytes")
            if nbytes:
                self.histogram(f"span.{span.kind}.nbytes").observe(nbytes)
        return self
