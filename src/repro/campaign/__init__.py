"""repro.campaign — declarative, cached, parallel experiment campaigns.

The evidence behind the paper is a cross-product — {shm, vmsplice,
KNEM, KNEM+I/OAT} x message sizes x machines x benchmarks — and this
package runs such cross-products as one engine instead of ad-hoc
scripts:

* :mod:`~repro.campaign.spec` — axes -> trials, each with a canonical
  config and a stable content hash;
* :mod:`~repro.campaign.executor` — multiprocessing pool, per-trial
  watchdog timeouts, crash containment;
* :mod:`~repro.campaign.cache` — content-addressed result store with
  atomic writes (re-running a campaign is 100 % cache hits);
* :mod:`~repro.campaign.stats` — replicate aggregation and the
  baseline regression gate;
* :mod:`~repro.campaign.queue` — durable JSONL lease journal whose
  replay rebuilds exact queue state after any kill point;
* :mod:`~repro.campaign.supervisor` — heartbeat-leased worker
  processes with death detection, requeue, retry budgets and
  quarantine;
* :mod:`~repro.campaign.chaos` — seeded worker-kill injection plus the
  self-check that recovery is byte-exact;
* :mod:`~repro.campaign.telemetry` — live supervised-fleet status:
  atomic ``status.json`` + Prometheus text exposition rewritten while
  the queue drains.

CLI: ``repro-bench campaign run|resume|compare|report|chaos``
(``--supervise`` routes run/resume through the crash-tolerant fleet;
``report --fleet`` reads the telemetry files).
"""

from repro.campaign.cache import ResultCache
from repro.campaign.chaos import (
    KILL_POINTS,
    ChaosPlan,
    ChaosReport,
    ChaosState,
    run_chaos_check,
)
from repro.campaign.executor import CampaignRun, run_campaign, run_trial
from repro.campaign.queue import Lease, LeaseQueue
from repro.campaign.supervisor import FleetConfig, run_supervised
from repro.campaign.spec import (
    MACHINES,
    WORKLOADS,
    CampaignSpec,
    Trial,
    canonical_json,
    group_config,
    group_label,
    trial_hash,
)
from repro.campaign.stats import (
    CampaignComparison,
    aggregate,
    compare_campaigns,
)
from repro.campaign.telemetry import (
    FleetTelemetry,
    format_status,
    load_status,
    prometheus_lines,
)

__all__ = [
    "CampaignSpec",
    "Trial",
    "trial_hash",
    "canonical_json",
    "group_config",
    "group_label",
    "WORKLOADS",
    "MACHINES",
    "ResultCache",
    "run_trial",
    "run_campaign",
    "CampaignRun",
    "run_supervised",
    "FleetConfig",
    "LeaseQueue",
    "Lease",
    "ChaosPlan",
    "ChaosState",
    "ChaosReport",
    "run_chaos_check",
    "KILL_POINTS",
    "aggregate",
    "compare_campaigns",
    "CampaignComparison",
    "FleetTelemetry",
    "prometheus_lines",
    "load_status",
    "format_status",
]
