"""Live fleet telemetry: status.json + Prometheus text exposition.

While a supervised campaign drains, the operator's only window into
the fleet used to be the journal (append-only, replay-to-read).  This
module gives the supervisor a *push* surface: every ``interval``
seconds it rewrites two files in the campaign's state directory —

* ``status.json`` — an atomic point-in-time document: queue depths,
  every ``campaign.*`` counter, per-trial wall-latency quantiles
  (p50/p95/p99 out of the ``wall.trial.seconds`` log2 histogram),
  journal fsync latency, and the result-store hit/miss/heal counters;
* ``metrics.prom`` — the same registry in Prometheus text exposition
  (``repro_`` prefix, dots sanitized to underscores, histograms as
  cumulative ``le`` buckets with ``_sum``/``_count``), for scrapers
  and for ``promtool``-style tooling.

Both files go through the atomic tmp+fsync+rename writers in
:mod:`repro.bench.store`, so a reader — ``repro-bench campaign report
--fleet``, a dashboard, ``watch cat`` — never sees a torn document no
matter when the supervisor is killed.  The writer itself is
crash-inert: telemetry files are pure output, never read back by
recovery.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from repro.bench.store import atomic_write_json, atomic_write_text

__all__ = [
    "FleetTelemetry",
    "STATUS_VERSION",
    "prometheus_lines",
    "histogram_summary",
    "load_status",
    "format_status",
]

STATUS_VERSION = 1

#: Quantiles reported for every histogram in ``status.json``.
QUANTILES = (0.5, 0.95, 0.99)


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus (``repro_`` prefix,
    ``[^a-zA-Z0-9_]`` to underscore)."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{safe}"


def prometheus_lines(metrics) -> list[str]:
    """Render a :class:`~repro.obs.metrics.MetricsRegistry` as
    Prometheus text-exposition lines.

    Counters and gauges are scalars; histograms become cumulative
    ``le``-bucket series (upper bounds are the log2 bucket bounds,
    closed by ``+Inf``) plus ``_sum`` and ``_count`` — the shape
    ``histogram_quantile()`` expects.
    """
    out: list[str] = []
    for kind, inst in metrics.iter_instruments():
        name = _prom_name(inst.name)
        if kind in ("counter", "gauge"):
            out.append(f"# TYPE {name} {kind}")
            out.append(f"{name} {_fmt(inst.value)}")
            continue
        out.append(f"# TYPE {name} histogram")
        cumulative = 0
        for e in sorted(inst.buckets):
            cumulative += inst.buckets[e]
            out.append(f'{name}_bucket{{le="{_fmt(2.0 ** e)}"}} {cumulative}')
        out.append(f'{name}_bucket{{le="+Inf"}} {inst.count}')
        out.append(f"{name}_sum {_fmt(inst.total)}")
        out.append(f"{name}_count {inst.count}")
    return out


def _fmt(value: float) -> str:
    """Shortest faithful rendering (integers lose the ``.0``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def histogram_summary(hist) -> dict:
    """count/sum/min/max plus p50/p95/p99 for ``status.json``."""
    out = {
        "count": hist.count,
        "sum": hist.total,
        "min": hist.vmin,
        "max": hist.vmax,
    }
    for q in QUANTILES:
        out[f"p{int(q * 100)}"] = hist.quantile(q)
    return out


class FleetTelemetry:
    """The supervisor's periodic status writer.

    Owns no state of its own beyond the rewrite clock: every tick reads
    the live registry/queue/cache and rewrites both files, so a missed
    tick costs staleness, never correctness.  ``interval`` bounds the
    write rate (two fsync'd renames per tick) — at the default 0.5 s
    the cost is invisible next to trial execution.
    """

    def __init__(
        self,
        metrics,
        queue=None,
        cache=None,
        out_dir: str | Path = ".",
        name: str = "campaign",
        interval: float = 0.5,
        clock=time.time,
    ) -> None:
        self.metrics = metrics
        self.queue = queue
        self.cache = cache
        self.out_dir = Path(out_dir)
        self.name = name
        self.interval = interval
        self.clock = clock
        self.status_path = self.out_dir / "status.json"
        self.prom_path = self.out_dir / "metrics.prom"
        self._last_write: Optional[float] = None
        self.writes = 0

    # ---------------------------------------------------------- gauges
    def refresh(self) -> None:
        """Mirror queue depths, retry-budget consumption, and store
        counters into the registry (so one snapshot carries it all)."""
        m = self.metrics
        if self.queue is not None:
            m.gauge("campaign.queue.pending").set(len(self.queue.pending))
            m.gauge("campaign.queue.leased").set(len(self.queue.leased))
            m.gauge("campaign.queue.done").set(len(self.queue.done))
            m.gauge("campaign.queue.quarantined").set(
                len(self.queue.quarantined)
            )
            m.gauge("campaign.retry_budget_consumed").set(
                sum(s.fails for s in self.queue.states.values())
            )
            m.gauge("campaign.journal.torn_lines").set(
                self.queue.counters.get("torn_lines", 0)
            )
        if self.cache is not None:
            m.gauge("campaign.cache.hits").set(self.cache.hits)
            m.gauge("campaign.cache.misses").set(self.cache.misses)
            m.gauge("campaign.cache.corrupt_healed").set(
                self.cache.corrupt_healed
            )
            served = self.cache.hits + self.cache.misses
            m.gauge("campaign.cache.hit_rate").set(
                self.cache.hits / served if served else 0.0
            )

    # ----------------------------------------------------------- ticks
    def maybe_write(self) -> bool:
        """Rewrite both files if ``interval`` elapsed; returns whether
        a write happened.  The first call always writes (a supervised
        run should become observable immediately)."""
        now = self.clock()
        if self._last_write is not None and now - self._last_write < self.interval:
            return False
        self.write(now)
        return True

    def write(self, now: Optional[float] = None) -> None:
        """Unconditional rewrite (the final flush uses this)."""
        now = self.clock() if now is None else now
        self.refresh()
        atomic_write_json(self.status_path, self.status_doc(now))
        atomic_write_text(
            self.prom_path, "\n".join(prometheus_lines(self.metrics)) + "\n"
        )
        self._last_write = now
        self.writes += 1

    def status_doc(self, now: Optional[float] = None) -> dict:
        now = self.clock() if now is None else now
        snap = self.metrics.snapshot()
        counters = {
            k: v
            for k, v in snap.items()
            if isinstance(v, (int, float)) and ".worker." not in k
        }
        doc = {
            "version": STATUS_VERSION,
            "kind": "fleet-status",
            "name": self.name,
            "updated_unix": now,
            "counters": counters,
        }
        if self.queue is not None:
            doc["queue"] = {
                "pending": len(self.queue.pending),
                "leased": len(self.queue.leased),
                "done": len(self.queue.done),
                "quarantined": len(self.queue.quarantined),
                "journal_events": self.queue.counters.get("events", 0),
                "torn_lines": self.queue.counters.get("torn_lines", 0),
            }
        if self.cache is not None:
            served = self.cache.hits + self.cache.misses
            doc["cache"] = {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "corrupt_healed": self.cache.corrupt_healed,
                "hit_rate": self.cache.hits / served if served else 0.0,
            }
        hists = {}
        for kind, inst in self.metrics.iter_instruments():
            if kind == "histogram":
                hists[inst.name] = histogram_summary(inst)
        if hists:
            doc["histograms"] = hists
        return doc


# ------------------------------------------------------------- reporting
def load_status(state_dir: str | Path) -> Optional[dict]:
    """The last-written ``status.json``, or ``None`` if absent."""
    import json

    path = Path(state_dir) / "status.json"
    try:
        return json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def format_status(doc: dict) -> str:
    """Human-readable rendering for ``campaign report --fleet``."""
    lines = [f"fleet {doc.get('name', '?')!r} (status.json v{doc.get('version')})"]
    q = doc.get("queue")
    if q:
        lines.append(
            f"  queue: {q['done']} done | {q['leased']} leased | "
            f"{q['pending']} pending | {q['quarantined']} quarantined | "
            f"journal events {q['journal_events']} "
            f"(torn {q['torn_lines']})"
        )
    c = doc.get("cache")
    if c:
        lines.append(
            f"  store: {c['hits']} hits | {c['misses']} misses | "
            f"{c['corrupt_healed']} corrupt-healed | "
            f"hit rate {c['hit_rate']:.1%}"
        )
    for name, value in sorted(doc.get("counters", {}).items()):
        if name.startswith("campaign."):
            lines.append(f"  {name} = {value:g}")
    for name, h in sorted(doc.get("histograms", {}).items()):
        if not h["count"]:
            continue
        parts = [f"n={h['count']}"]
        for key in ("p50", "p95", "p99"):
            if h.get(key) is not None:
                parts.append(f"{key}={h[key]:.4g}")
        lines.append(f"  {name}: {' '.join(parts)}")
    return "\n".join(lines)
