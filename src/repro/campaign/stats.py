"""Aggregate seeded replicates and gate regressions against a baseline.

:func:`aggregate` folds a campaign's trial records into one row per
replicate group (the trial config minus its seed): median, quartiles,
IQR, and a notched-boxplot-style confidence band
(``median +- 1.58 * IQR / sqrt(n)``).  :func:`compare_campaigns` then
diffs two campaign documents group-by-group and flags any median drift
beyond tolerance — the regression gate behind
``repro-bench campaign compare`` (non-zero exit naming the regressed
trials).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.campaign.spec import group_config, group_label
from repro.errors import BenchmarkError

__all__ = ["aggregate", "compare_campaigns", "CampaignComparison"]


def _quantile(sorted_vals: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted list."""
    if not sorted_vals:
        raise BenchmarkError("quantile of an empty sample")
    pos = q * (len(sorted_vals) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return sorted_vals[lo]
    frac = pos - lo
    return sorted_vals[lo] * (1 - frac) + sorted_vals[hi] * frac


def aggregate(records: list[dict]) -> list[dict]:
    """One row per replicate group, in first-appearance order.

    Failed replicates are counted but excluded from the statistics; a
    group with no successful replicate still appears (``n == 0``) so a
    baseline comparison can notice it went dark.
    """
    order: list[str] = []
    groups: dict[str, dict] = {}
    for record in records:
        cfg = record["config"]
        key = group_label(cfg)
        if key not in groups:
            order.append(key)
            groups[key] = {
                "label": key,
                "config": group_config(cfg),
                "metric": record.get("primary"),
                "seeds": [],
                "values": [],
                "failures": 0,
            }
        group = groups[key]
        if record["status"] != "ok":
            group["failures"] += 1
            continue
        group["seeds"].append(record["seed"])
        value = (record["metrics"] or {}).get(record.get("primary"))
        if value is not None:
            group["values"].append(float(value))
            group["metric"] = record["primary"]
    out = []
    for key in order:
        group = groups[key]
        values = sorted(group.pop("values"))
        n = len(values)
        row = {**group, "n": n}
        if n:
            median = _quantile(values, 0.5)
            q25 = _quantile(values, 0.25)
            q75 = _quantile(values, 0.75)
            iqr = q75 - q25
            band = 1.58 * iqr / math.sqrt(n)
            row.update(
                median=median, q25=q25, q75=q75, iqr=iqr,
                ci_lo=median - band, ci_hi=median + band,
                min=values[0], max=values[-1],
            )
        out.append(row)
    return out


@dataclass
class CampaignComparison:
    """Group-by-group drift between a baseline and a fresh campaign."""

    name: str
    #: (label, metric, baseline median, current median, drift) rows.
    rows: list[tuple[str, str, float, float, float]] = field(
        default_factory=list
    )
    #: Groups with successful baseline replicates but none now.
    broken: list[str] = field(default_factory=list)
    #: Current groups absent from the baseline (new axes — not gated).
    unmatched: list[str] = field(default_factory=list)
    tolerance: float = 0.05

    def add(self, label: str, metric: str, base: float, cur: float) -> None:
        drift = (cur - base) / base if base else 0.0
        self.rows.append((label, metric, base, cur, drift))

    @property
    def regressions(self) -> list[tuple[str, str, float, float, float]]:
        return [r for r in self.rows if abs(r[4]) > self.tolerance]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.broken

    def format(self) -> str:
        lines = [
            f"campaign comparison: {self.name} "
            f"(tolerance ±{self.tolerance:.0%})"
        ]
        for label, metric, base, cur, drift in self.rows:
            flag = "!!" if abs(drift) > self.tolerance else "  "
            lines.append(
                f" {flag} {label:44.44s} {metric:>15.15s} "
                f"{base:12.2f} -> {cur:12.2f}  {drift:+7.2%}"
            )
        for label in self.broken:
            lines.append(f" !! {label:44.44s} baseline ok, now failing")
        if self.unmatched:
            lines.append(
                f"    ({len(self.unmatched)} group(s) not in baseline, "
                "not gated)"
            )
        if self.ok:
            lines.append("result: OK")
        else:
            names = [r[0] for r in self.regressions] + self.broken
            lines.append(
                f"result: {len(names)} REGRESSIONS: " + ", ".join(names)
            )
        return "\n".join(lines)


def compare_campaigns(
    baseline: dict, current: dict, tolerance: float = 0.05
) -> CampaignComparison:
    """Diff two campaign documents (as produced by ``document()``).

    Groups are matched by label; drift is measured on group medians of
    the primary metric.  A group that had successful replicates in the
    baseline but none now counts as a regression.
    """
    comparison = CampaignComparison(
        name=current.get("name", "campaign"), tolerance=tolerance
    )
    base_rows = {row["label"]: row for row in baseline.get("aggregates", [])}
    for row in current.get("aggregates", []):
        base = base_rows.get(row["label"])
        if base is None:
            comparison.unmatched.append(row["label"])
            continue
        if base.get("n", 0) == 0:
            continue  # baseline never measured this group
        if row.get("n", 0) == 0:
            comparison.broken.append(row["label"])
            continue
        comparison.add(
            row["label"], row.get("metric") or "?",
            float(base["median"]), float(row["median"]),
        )
    if not comparison.rows and not comparison.broken:
        raise BenchmarkError("no comparable groups between the campaigns")
    return comparison
