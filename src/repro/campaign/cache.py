"""Content-addressed store of trial results, behind a pluggable backend.

One record per trial, keyed by the trial's config hash.  Historically
this was always a directory of ``results/<hash>.json`` files; the
serving layer generalized the backing into the
:class:`repro.service.stores.ResultStore` interface (directory, sqlite,
in-memory), and :class:`ResultCache` became the facade the campaign
stack talks to: it owns the read-side hit/miss accounting and delegates
storage, corruption healing and tmp-sweeping to whichever backend it
fronts.

Directory stores keep the original crash story — writes go through
:func:`repro.bench.store.atomic_write_json` (tmp + fsync + rename), so
an interrupted campaign leaves at worst a stray ``.tmp`` file, never a
torn record.  The sqlite store gets the same property from WAL
journaling, plus wholesale rebuild (journal replay re-runs the lost
trials) if the database file itself is destroyed.

Only successful trials are stored; failures always re-run, which is
what makes ``campaign resume`` a retry of exactly the broken subset.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.errors import BenchmarkError

__all__ = ["ResultCache"]


class ResultCache:
    """Hash-keyed trial records over a pluggable :class:`ResultStore`.

    Construct with a directory path (the historical calling convention,
    still the default backing) or any ``ResultStore`` instance; use
    :meth:`open` to construct from a store URL (worker processes reopen
    the coordinator's store this way).
    """

    def __init__(self, backing) -> None:
        from repro.service.stores import ResultStore

        if isinstance(backing, ResultStore):
            self.store = backing
        else:
            from repro.service.stores import DirectoryStore

            self.store = DirectoryStore(backing)
        #: Read-side telemetry since construction.  ``hits`` counts
        #: records served, ``misses`` counts absent keys; both live on
        #: the facade because they describe *this reader*, not the
        #: shared backing.  The fleet mirrors these into
        #: ``campaign.cache.*`` metrics.
        self.hits = 0
        self.misses = 0

    @classmethod
    def open(cls, url: str) -> "ResultCache":
        """A cache over the store ``url`` names (see ``open_store``)."""
        from repro.service.stores import open_store

        return cls(open_store(url))

    # ------------------------------------------------- backend passthrough
    @property
    def url(self) -> str:
        """String another process can :meth:`open` to share the backing."""
        return self.store.url

    @property
    def shared(self) -> bool:
        """Whether :attr:`url` reopens to the *same* records elsewhere."""
        return self.store.shared

    @property
    def corrupt_healed(self) -> int:
        """Records deleted-and-missed because they would not parse.

        Lives on the store (healing mutates the shared backing), but
        reads as a counter here for backward compatibility — it is a
        subset of ``misses``.
        """
        return self.store.corrupt_healed

    @property
    def root(self) -> Path:
        """Directory-store root (raises for non-directory backings)."""
        root = getattr(self.store, "root", None)
        if root is None:
            raise BenchmarkError(
                f"cache backing is {self.store.kind!r}, not a directory"
            )
        return root

    def path(self, key: str) -> Path:
        """Record path for directory backings (chaos harness hook)."""
        if not hasattr(self.store, "path"):
            raise BenchmarkError(
                f"cache backing is {self.store.kind!r}: records have no paths"
            )
        return self.store.path(key)

    # ---------------------------------------------------------- read/write
    def get(self, key: str) -> Optional[dict]:
        """The stored record, or None on a miss.

        A corrupt record (torn write from a pre-atomic store, manual
        tampering) is deleted by the backend and treated as a miss —
        the trial simply re-runs and rewrites it.
        """
        record = self.store.get(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: dict) -> None:
        self.store.put(key, record)

    def sweep_tmp(self) -> int:
        """Delete stale partial-write litter (backend-specific).

        Called by the supervised fleet on startup; a no-op for backends
        whose writes leave no litter (sqlite, memory).
        """
        return self.store.sweep_tmp()

    def keys(self) -> list[str]:
        return self.store.keys()

    def close(self) -> None:
        self.store.close()

    def __len__(self) -> int:
        return len(self.store)

    def __contains__(self, key: str) -> bool:
        return key in self.store
