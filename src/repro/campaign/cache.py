"""Content-addressed on-disk store of trial results.

One JSON file per trial, named by the trial's config hash
(``results/<hash>.json``).  Writes go through
:func:`repro.bench.store.atomic_write_json` (tmp + fsync + rename), so
an interrupted campaign leaves at worst a stray ``.tmp`` file — never
a torn record — and simply resumes on the next run: hashes already in
the cache are served as hits, everything else executes.

Only successful trials are stored; failures always re-run, which is
what makes ``campaign resume`` a retry of exactly the broken subset.
"""

from __future__ import annotations

import json
import string
from pathlib import Path
from typing import Optional

from repro.bench.store import atomic_write_json
from repro.errors import BenchmarkError

__all__ = ["ResultCache"]

_HEX = set(string.hexdigits.lower())


class ResultCache:
    """Hash-keyed trial records under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Read-side telemetry since construction.  ``hits`` counts
        #: records served, ``misses`` counts absent keys, and
        #: ``corrupt_healed`` counts files that were deleted-and-missed
        #: because they would not parse (a subset of ``misses``).  The
        #: fleet mirrors these into ``campaign.cache.*`` metrics.
        self.hits = 0
        self.misses = 0
        self.corrupt_healed = 0

    def path(self, key: str) -> Path:
        if not key or not set(key) <= _HEX:
            raise BenchmarkError(f"cache key is not a hex digest: {key!r}")
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored record, or None on a miss.

        A corrupt file (torn write from a pre-atomic store, manual
        tampering) is deleted and treated as a miss — the trial simply
        re-runs and rewrites it.
        """
        path = self.path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except json.JSONDecodeError:
            path.unlink(missing_ok=True)
            self.corrupt_healed += 1
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            path.unlink(missing_ok=True)
            self.corrupt_healed += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, record: dict) -> None:
        atomic_write_json(self.path(key), record)

    def sweep_tmp(self) -> int:
        """Delete stale ``.tmp`` files (writers killed mid-write).

        Called by the supervised fleet on startup: a ``.tmp`` is always
        either a finished write that never got renamed or a torn one —
        in both cases the trial re-runs, so the file is pure litter.
        """
        stale = list(self.root.glob("*.tmp"))
        for path in stale:
            path.unlink(missing_ok=True)
        return len(stale)

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()
