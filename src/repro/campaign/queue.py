"""Durable, crash-consistent lease queue for campaign trials.

The fleet's single source of truth is an append-only JSONL *journal*:
one event per line, each line written with a single ``O_APPEND``
``write(2)`` plus ``fsync``, so concurrent writers (the supervisor and
its workers) never interleave bytes and a SIGKILL between two events
loses at most the event that had not been written yet.  Queue state is
never stored — it is *replayed* from the journal, so recovery after
any kill point is exact: rebuild the per-trial state machine, complete
trials whose result already landed in the content-addressed store,
requeue the leases that died in flight.

Per-trial state machine (replayed by :func:`apply_event`)::

            lease                 complete
    pending ------> leased ----------------> done        (terminal)
       ^              |  fail (budget left)
       |<-------------+  requeue (worker death / deadline)
       |              |
       |              |  fail (budget exhausted)
       |              +-----------------> quarantined    (terminal)

Terminal states win: once a trial is ``done`` or ``quarantined`` no
later event moves it, so duplicated or stale events — a worker's
``complete`` landing after the supervisor already reconciled the trial
from the store, a requeue racing a completion — replay idempotently.
Unparseable lines (the torn tail of a killed append, injected by the
chaos harness) are counted and skipped, and the tail is newline-healed
before the next append so one torn fragment can never swallow a later
event.

Failures consume the per-trial retry budget with exponential backoff
(``not_before`` is recorded in the event, so replay restores the exact
schedule); kills and expired leases requeue for free — a trial that
*fails deterministically* quarantines after exactly ``retry_budget``
attempts, while one that merely kept being killed always drains.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.errors import CampaignError, LeaseExpired

__all__ = [
    "EVENT_KINDS",
    "Lease",
    "TrialState",
    "LeaseQueue",
    "append_event",
    "apply_event",
    "replay_lines",
    "journal_counters",
]

#: Event kinds the replay understands; unknown kinds are ignored so
#: the format can grow without breaking old journals.
EVENT_KINDS = (
    "begin", "lease", "complete", "fail", "requeue", "quarantine", "chaos",
)

#: Trial statuses a replayed state machine may be in.
STATUSES = ("pending", "leased", "done", "quarantined")


def append_event(path: str | Path, event: dict) -> None:
    """Append one journal event as a single atomic ``write``.

    The whole line (JSON + newline) goes through one ``os.write`` on an
    ``O_APPEND`` descriptor, then ``fsync`` — concurrent appenders
    cannot interleave, and a crash either persists the full line or
    none of it (the chaos harness injects the "half a line" case the
    replay must also survive).
    """
    line = json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, line.encode())
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass(frozen=True)
class Lease:
    """A granted claim on one trial: hash + attempt + unique token.

    The token identifies *this* grant; after a requeue the queue mints
    a new token, so reports from the presumed-dead worker fail with
    :class:`repro.errors.LeaseExpired` instead of corrupting state.
    """

    trial: str
    worker: str
    attempt: int
    token: int
    deadline: float


@dataclass
class TrialState:
    """Replayed per-trial state (see the module state machine)."""

    status: str = "pending"
    #: Leases ever granted (attempt counter, 1-based in events).
    attempts: int = 0
    #: Reported deterministic failures (consume the retry budget).
    fails: int = 0
    #: Earliest wall-clock time the next lease may be granted.
    not_before: float = 0.0
    #: Token of the currently live lease (status == "leased").
    token: Optional[int] = None
    #: Wall-clock deadline of the live lease (from the lease event).
    deadline: float = 0.0
    #: Worker holding the live lease.
    worker: Optional[str] = None
    #: Last recorded failure text (becomes the quarantine record).
    error: Optional[str] = None


def apply_event(states: dict[str, TrialState], event: dict) -> None:
    """Fold one event into the replayed states (idempotent, total).

    Events for unknown trials create their state lazily, events in
    terminal states are ignored, unknown kinds are ignored — *any*
    event sequence replays without raising, which the hypothesis
    property test pins down.
    """
    kind = event.get("ev")
    h = event.get("hash")
    if kind in (None, "begin", "chaos") or not isinstance(h, str):
        return
    state = states.setdefault(h, TrialState())
    if state.status in ("done", "quarantined"):
        return  # terminal states win
    if kind == "lease":
        state.status = "leased"
        state.attempts += 1
        state.token = event.get("token")
        state.worker = event.get("worker")
        state.deadline = float(event.get("deadline", 0.0))
    elif kind == "complete":
        state.status = "done"
        state.token = None
    elif kind == "fail":
        state.status = "pending"
        state.fails += 1
        state.token = None
        state.not_before = float(event.get("not_before", 0.0))
        state.error = event.get("error")
    elif kind == "requeue":
        state.status = "pending"
        state.token = None
    elif kind == "quarantine":
        state.status = "quarantined"
        state.token = None
        state.error = event.get("error", state.error)


def replay_lines(lines) -> tuple[dict[str, TrialState], dict]:
    """Replay journal lines into states + counters.

    Unparseable lines (torn appends, injected garbage) are skipped and
    counted; the replayed state is exactly what the event sequence
    minus the lost lines implies — which the state machine makes safe,
    because every lost non-terminal event only causes an idempotent
    re-lease/re-run.
    """
    states: dict[str, TrialState] = {}
    counters = {"events": 0, "torn_lines": 0, "chaos_kills": 0}
    for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except json.JSONDecodeError:
            counters["torn_lines"] += 1
            continue
        if not isinstance(event, dict) or "ev" not in event:
            counters["torn_lines"] += 1
            continue
        counters["events"] += 1
        if event.get("ev") == "chaos":
            counters["chaos_kills"] += 1
        apply_event(states, event)
    return states, counters


def journal_counters(path: str | Path) -> dict:
    """Replay counters of a journal file (empty counters if absent)."""
    path = Path(path)
    if not path.exists():
        return {"events": 0, "torn_lines": 0, "chaos_kills": 0}
    with open(path) as fh:
        _, counters = replay_lines(fh)
    return counters


class LeaseQueue:
    """The durable work queue: trial order + journal + state machine.

    ``hashes`` fixes the (deterministic) dispatch order; an existing
    journal at ``path`` is replayed on open, which *is* the recovery
    scan — there is no other load path.
    """

    def __init__(
        self,
        path: str | Path,
        hashes: list[str],
        *,
        retry_budget: int = 3,
        backoff_base: float = 0.05,
        name: str = "campaign",
        metrics=None,
    ) -> None:
        if retry_budget < 1:
            raise CampaignError(f"retry_budget must be >= 1, got {retry_budget}")
        if backoff_base < 0:
            raise CampaignError(f"backoff_base must be >= 0, got {backoff_base}")
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        #: set, every journal append's write+fsync wall latency lands in
        #: the ``wall.journal.fsync_seconds`` histogram (the fleet's
        #: durability tax, surfaced by the telemetry files).
        self.metrics = metrics
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.order: list[str] = []
        seen = set()
        for h in hashes:
            if h not in seen:
                seen.add(h)
                self.order.append(h)
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.counters = {"events": 0, "torn_lines": 0, "chaos_kills": 0}
        self.states: dict[str, TrialState] = {}
        if self.path.exists():
            with open(self.path) as fh:
                replayed, self.counters = replay_lines(fh)
            # Keep only this campaign's trials; foreign hashes (an
            # earlier spec sharing the state dir) replay inert.
            self.states = {h: replayed[h] for h in seen & replayed.keys()}
            self.heal_tail()
        for h in self.order:
            self.states.setdefault(h, TrialState())
        self._next_token = 1 + max(
            (s.token or 0 for s in self.states.values()), default=0
        )
        self._append({
            "ev": "begin", "name": name, "trials": len(self.order),
            "retry_budget": retry_budget,
        })

    # ------------------------------------------------------------ journal
    def _append(self, event: dict) -> None:
        if self.metrics is None:
            append_event(self.path, event)
        else:
            t0 = time.perf_counter()
            append_event(self.path, event)
            self.metrics.histogram("wall.journal.fsync_seconds").observe(
                time.perf_counter() - t0
            )
        self.counters["events"] += 1

    def heal_tail(self) -> None:
        """Terminate a torn (newline-less) tail so later appends parse.

        A killed append can leave half a line at EOF; appending a bare
        newline quarantines the fragment as its own (skipped) garbage
        line instead of letting it swallow the next real event.
        """
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() == 0:
                    return
                fh.seek(-1, os.SEEK_END)
                last = fh.read(1)
        except FileNotFoundError:
            return
        if last != b"\n":
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
            try:
                os.write(fd, b"\n")
                os.fsync(fd)
            finally:
                os.close(fd)

    # ------------------------------------------------------------- leasing
    def lease(
        self, worker: str, now: float, ttl: float, skip=None
    ) -> Optional[Lease]:
        """Grant the first ready pending trial, or None if none is.

        Trials are scanned in spec-expansion order; a trial inside its
        backoff window (``not_before``) is skipped, not blocked on.
        ``skip`` is an optional hash set to pass over — the coordinator
        uses it to keep a trial already in flight for *another*
        submission from running twice (its result is propagated on
        completion instead).
        """
        for h in self.order:
            state = self.states[h]
            if state.status != "pending" or now < state.not_before:
                continue
            if skip is not None and h in skip:
                continue
            state.status = "leased"
            state.attempts += 1
            state.token = self._next_token
            state.worker = worker
            state.deadline = now + ttl
            self._next_token += 1
            lease = Lease(
                trial=h, worker=worker, attempt=state.attempts,
                token=state.token, deadline=now + ttl,
            )
            self._append({
                "ev": "lease", "hash": h, "worker": worker,
                "attempt": state.attempts, "token": state.token,
                "deadline": lease.deadline,
            })
            return lease
        return None

    def _live_state(self, lease: Lease) -> TrialState:
        state = self.states.get(lease.trial)
        if state is None or state.status != "leased" or state.token != lease.token:
            raise LeaseExpired(lease.trial, lease.worker, lease.attempt)
        return state

    def note_complete(self, lease: Lease) -> None:
        """Mark done *without* journaling (the worker already did).

        Workers append their own ``complete`` event right after the
        store write — that append is the durable one; the supervisor
        only folds the outcome into its in-memory state.
        """
        state = self._live_state(lease)
        state.status = "done"
        state.token = None

    def complete(self, lease: Lease) -> None:
        """Journal + mark a completion (single-writer callers)."""
        state = self._live_state(lease)
        self._append({
            "ev": "complete", "hash": lease.trial, "worker": lease.worker,
            "attempt": lease.attempt, "token": lease.token,
        })
        state.status = "done"
        state.token = None

    def complete_external(self, trial: str, reason: str) -> None:
        """Reconcile a trial whose result landed but whose worker died.

        Idempotent: a duplicate ``complete`` (the worker's own append
        made it after all) replays inert.
        """
        state = self.states[trial]
        self._append({"ev": "complete", "hash": trial, "reason": reason})
        state.status = "done"
        state.token = None

    def fail(self, lease: Lease, error: str, now: float) -> str:
        """Record a deterministic failure; returns "retry"|"quarantined".

        The ``retry_budget``-th failure quarantines; earlier ones
        requeue behind an exponential backoff whose exact ``not_before``
        is journaled so recovery restores the schedule.
        """
        state = self._live_state(lease)
        state.fails += 1
        state.error = error
        state.token = None
        if state.fails >= self.retry_budget:
            state.status = "quarantined"
            self._append({
                "ev": "quarantine", "hash": lease.trial,
                "attempts": state.attempts, "error": error,
            })
            return "quarantined"
        state.status = "pending"
        state.not_before = now + self.backoff_base * 2 ** (state.fails - 1)
        self._append({
            "ev": "fail", "hash": lease.trial, "worker": lease.worker,
            "attempt": lease.attempt, "token": lease.token,
            "error": error, "not_before": state.not_before,
        })
        return "retry"

    def requeue(self, lease: Lease, reason: str) -> None:
        """Return a leased trial to pending (kill/death/deadline).

        Does *not* consume the retry budget: being killed is the
        fleet's fault, not the trial's.
        """
        state = self._live_state(lease)
        state.status = "pending"
        state.token = None
        self._append({
            "ev": "requeue", "hash": lease.trial, "worker": lease.worker,
            "attempt": lease.attempt, "token": lease.token, "reason": reason,
        })

    def expire(self, now: float) -> list[str]:
        """Requeue every lease past its journaled deadline."""
        expired = []
        for h in self.order:
            state = self.states[h]
            if state.status != "leased" or now < state.deadline:
                continue
            lease = Lease(
                trial=h, worker=state.worker or "?",
                attempt=state.attempts, token=state.token or 0,
                deadline=0.0,
            )
            self.requeue(lease, reason="deadline")
            expired.append(h)
        return expired

    def recover(self, has_result: Callable[[str], bool]) -> dict:
        """Post-replay reconciliation: the recovery scan's second half.

        * a *leased* trial whose result is already in the store was
          killed between the store write and its ``complete`` append —
          complete it from the store;
        * a *leased* trial with no stored result died mid-trial —
          requeue it;
        * a *done* trial with no stored result hit the (now closed)
          torn-store window — requeue it so it re-runs.
        """
        actions = {"completed": 0, "requeued": 0}
        for h in self.order:
            state = self.states[h]
            if state.status == "leased":
                if has_result(h):
                    self.complete_external(h, reason="recovered-from-store")
                    actions["completed"] += 1
                else:
                    self.requeue(
                        Lease(h, state.worker or "?", state.attempts,
                              state.token or 0, 0.0),
                        reason="recovered",
                    )
                    actions["requeued"] += 1
            elif state.status == "done" and not has_result(h):
                state.status = "pending"
                state.token = None
                self._append({
                    "ev": "requeue", "hash": h, "reason": "store-missing",
                })
                actions["requeued"] += 1
        return actions

    # ----------------------------------------------------------- inspection
    def _with_status(self, status: str) -> list[str]:
        return [h for h in self.order if self.states[h].status == status]

    @property
    def pending(self) -> list[str]:
        return self._with_status("pending")

    @property
    def leased(self) -> list[str]:
        return self._with_status("leased")

    @property
    def done(self) -> list[str]:
        return self._with_status("done")

    @property
    def quarantined(self) -> list[str]:
        return self._with_status("quarantined")

    @property
    def all_settled(self) -> bool:
        return all(
            self.states[h].status in ("done", "quarantined")
            for h in self.order
        )

    def describe(self) -> str:
        return (
            f"queue: {len(self.done)} done | {len(self.leased)} leased | "
            f"{len(self.pending)} pending | "
            f"{len(self.quarantined)} quarantined"
        )
