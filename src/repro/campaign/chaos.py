"""Seeded chaos injection for the campaign fleet.

This is :mod:`repro.faults` lifted one layer up: where a
:class:`~repro.faults.FaultPlan` drops packets on the simulated wire,
a :class:`ChaosPlan` SIGKILLs *real worker processes* at the campaign
layer's torn-state windows — and the same seeded-substream discipline
applies, so two runs with the same plan kill the same (trial, attempt)
pairs at the same points regardless of worker scheduling.

Kill points, each targeting one crash-consistency mechanism:

* ``mid-trial`` — die holding a lease with nothing on disk; recovery
  must requeue from the journal;
* ``store-write`` — leave a *torn* record at the result path, then
  die; the content-addressed cache must self-heal and re-run;
* ``journal-append`` — append half a ``complete`` line, then die; the
  journal replay must skip the fragment and the tail-healing must keep
  later events parseable;
* ``spawn`` — die before taking any lease (worker death while idle);
* ``hang`` — sleep forever while still heartbeating, so only the
  lease-deadline watchdog can reclaim the trial.

Attempts past ``max_kill_attempts`` are never killed, so every trial
settles: chaos perturbs *when* work happens, never *what* the final
campaign document says — which :func:`run_chaos_check` proves by
byte-comparing the recovered document against an undisturbed run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.errors import CampaignError

__all__ = [
    "KILL_POINTS",
    "ChaosPlan",
    "ChaosState",
    "pool_kill_armed",
    "ChaosReport",
    "run_chaos_check",
]

#: Kill points a plan may draw from (see the module docstring).
KILL_POINTS = ("mid-trial", "store-write", "journal-append", "spawn", "hang")

#: Env var arming the *pool-mode* kill hook: a comma list of trial-hash
#: prefixes; a pool worker whose trial matches SIGKILLs itself before
#: executing.  Only honoured inside a child process (never the caller),
#: which is what lets tests and the chaos harness crash
#: ``run_campaign`` workers without touching the orchestrator.
POOL_KILL_ENV = "REPRO_CHAOS_KILL"


def _check_prob(name: str, p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise CampaignError(f"{name} must be a probability in [0, 1], got {p}")


@dataclass(frozen=True)
class ChaosPlan:
    """Immutable, seeded description of the kills to inject."""

    seed: int = 0
    #: Per-(trial, attempt) kill probability.
    kill_prob: float = 0.0
    #: Kill points drawn (uniformly, from the same substream) on a hit.
    points: tuple = ("mid-trial", "store-write", "journal-append")
    #: Attempts beyond this are never killed — the termination bound.
    max_kill_attempts: int = 3
    #: Probability a freshly spawned worker dies before its first
    #: lease (the "before lease" kill point; per incarnation).
    spawn_kill_prob: float = 0.0
    #: Kills injected unconditionally: ``(trial_hash, attempt, point)``
    #: triples.  :func:`run_chaos_check` uses this to guarantee the
    #: harness always bites — when the seeded draws happen to produce
    #: zero kills for a small trial set, it forces exactly one,
    #: deterministically.
    forced: tuple = ()

    def __post_init__(self) -> None:
        _check_prob("ChaosPlan.kill_prob", self.kill_prob)
        _check_prob("ChaosPlan.spawn_kill_prob", self.spawn_kill_prob)
        for p in self.points:
            if p not in KILL_POINTS:
                raise CampaignError(
                    f"unknown kill point {p!r}; pick from {KILL_POINTS}"
                )
        if not self.points:
            raise CampaignError("ChaosPlan.points is empty")
        if self.max_kill_attempts < 0:
            raise CampaignError(
                f"max_kill_attempts must be >= 0: {self.max_kill_attempts}"
            )
        for entry in self.forced:
            if len(entry) != 3 or entry[2] not in KILL_POINTS:
                raise CampaignError(f"bad forced kill {entry!r}")

    @property
    def armed(self) -> bool:
        return (
            self.kill_prob > 0 or self.spawn_kill_prob > 0 or bool(self.forced)
        )


class ChaosState:
    """Per-process decision maker for a plan (workers build their own).

    Decisions are drawn from ``default_rng([seed, key...])`` substreams
    keyed on the trial hash and attempt (or worker slot and
    incarnation), so they are identical in every process and across
    runs — the chaos schedule is part of the experiment's identity.
    """

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self.kills_injected = 0

    @staticmethod
    def _key(trial_hash: str) -> int:
        return int(trial_hash[:12], 16)

    def kill_point(self, trial_hash: str, attempt: int) -> Optional[str]:
        """The kill point for (trial, attempt), or None to run clean."""
        plan = self.plan
        for forced_hash, forced_attempt, point in plan.forced:
            if trial_hash == forced_hash and attempt == forced_attempt:
                self.kills_injected += 1
                return point
        if plan.kill_prob <= 0 or attempt > plan.max_kill_attempts:
            return None
        rng = np.random.default_rng([plan.seed, self._key(trial_hash), attempt])
        if rng.random() >= plan.kill_prob:
            return None
        self.kills_injected += 1
        return plan.points[int(rng.integers(len(plan.points)))]

    def spawn_kill(self, slot: int, incarnation: int) -> bool:
        """Whether this worker incarnation dies before its first lease."""
        plan = self.plan
        if plan.spawn_kill_prob <= 0 or incarnation > plan.max_kill_attempts:
            return False
        rng = np.random.default_rng([plan.seed, 0x5BA, slot, incarnation])
        return bool(rng.random() < plan.spawn_kill_prob)


def pool_kill_armed(config: dict) -> bool:
    """Pool-mode kill hook: should this child die before this trial?

    Reads :data:`POOL_KILL_ENV` (hash prefixes) and fires only when
    running inside a :mod:`multiprocessing` child — the orchestrating
    process never self-kills, no matter what the env says.
    """
    prefixes = os.environ.get(POOL_KILL_ENV, "")
    if not prefixes:
        return False
    import multiprocessing

    if multiprocessing.parent_process() is None:
        return False
    from repro.campaign.spec import trial_hash

    h = trial_hash(config)
    return any(h.startswith(p) for p in prefixes.split(",") if p)


# ------------------------------------------------------------- self-check
@dataclass
class ChaosReport:
    """Outcome of :func:`run_chaos_check` (the chaos harness verdict)."""

    clean_doc: dict
    chaos_doc: dict
    identical: bool
    worker_deaths: int
    requeues: int
    kills_journaled: int
    quarantined: list
    fleet: dict
    journal_path: str

    @property
    def ok(self) -> bool:
        """Chaos actually bit (>=1 kill, >=1 requeue) and the recovered
        document is byte-identical to the undisturbed run's."""
        return self.identical and self.worker_deaths >= 1 and self.requeues >= 1

    def describe(self) -> str:
        lines = [
            f"chaos: {self.worker_deaths} worker death(s) observed, "
            f"{self.kills_journaled} kill(s) journaled, "
            f"{self.requeues} requeue(s), "
            f"{len(self.quarantined)} quarantined",
            f"byte-identical: {'yes' if self.identical else 'NO'}",
        ]
        for name in sorted(self.fleet):
            value = self.fleet[name]
            # Histogram snapshots (wall.* latency dicts) have their own
            # surface in the telemetry files; only scalars print here.
            if isinstance(value, (int, float)):
                lines.append(f"  {name} = {value:g}")
        return "\n".join(lines)


def run_chaos_check(
    spec,
    plan: ChaosPlan,
    *,
    state_dir: str | Path,
    workers: int = 2,
    retry_budget: int = 3,
    lease_ttl: float = 60.0,
    heartbeat_timeout: float = 10.0,
    backoff_base: float = 0.05,
) -> ChaosReport:
    """Run ``spec`` once undisturbed and once under ``plan``, compare.

    Both runs start from cold, separate stores under ``state_dir``
    (``clean/`` and ``chaos/``), so the only difference between them is
    the injected kills — byte-identical documents therefore prove that
    journal replay + store reconciliation recover *exactly*.
    """
    import dataclasses

    from repro.campaign.cache import ResultCache
    from repro.campaign.queue import journal_counters
    from repro.campaign.spec import canonical_json
    from repro.campaign.supervisor import run_supervised

    if not plan.armed:
        raise CampaignError("chaos check needs an armed plan (kill_prob > 0)")
    # The check's whole point is that chaos *bites*: with few trials and
    # a modest kill_prob the seeded draws can legitimately come up all
    # clean, so precompute them and force exactly one first-attempt kill
    # when that happens (still deterministic — same spec + plan always
    # forces the same kill).
    trials = list(spec.trials())
    if not plan.forced and trials:
        # Only attempt-1 draws can *start* a kill chain (attempt n > 1
        # exists only because attempt n-1 was already killed), so probe
        # those — a hit at a later attempt alone would never be reached.
        probe = ChaosState(plan)
        would_fire = any(
            probe.kill_point(t.hash, 1) for t in trials
        ) or any(probe.spawn_kill(slot, 1) for slot in range(workers))
        if not would_fire:
            plan = dataclasses.replace(
                plan, forced=((trials[0].hash, 1, plan.points[0]),)
            )
    state_dir = Path(state_dir)
    clean_dir = state_dir / "clean"
    chaos_dir = state_dir / "chaos"
    clean = run_supervised(
        spec, cache=ResultCache(clean_dir / "results"),
        workers=workers, state_dir=clean_dir, chaos=None,
        retry_budget=retry_budget, lease_ttl=lease_ttl,
        heartbeat_timeout=heartbeat_timeout, backoff_base=backoff_base,
    )
    disturbed = run_supervised(
        spec, cache=ResultCache(chaos_dir / "results"),
        workers=workers, state_dir=chaos_dir, chaos=plan,
        retry_budget=retry_budget, lease_ttl=lease_ttl,
        heartbeat_timeout=heartbeat_timeout, backoff_base=backoff_base,
    )
    clean_doc = clean.document()
    chaos_doc = disturbed.document()
    fleet = dict(disturbed.fleet or {})
    journal = chaos_dir / "journal.jsonl"
    return ChaosReport(
        clean_doc=clean_doc,
        chaos_doc=chaos_doc,
        identical=canonical_json(clean_doc) == canonical_json(chaos_doc),
        worker_deaths=int(fleet.get("campaign.worker_deaths", 0)),
        requeues=int(fleet.get("campaign.requeues", 0)),
        kills_journaled=journal_counters(journal)["chaos_kills"],
        quarantined=list(disturbed.quarantined),
        fleet=fleet,
        journal_path=str(journal),
    )
