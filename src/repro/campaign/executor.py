"""Run a campaign's trials: worker pool, isolation, cache, watchdog.

Trials execute through a :mod:`multiprocessing` pool (``workers > 1``)
or serially in-process (``workers <= 1``).  Either way:

* **deterministic order** — trials run and report in spec-expansion
  order (``pool.map`` preserves it), so two runs of the same spec
  produce byte-identical documents;
* **process isolation** — each pooled trial runs in a worker process,
  so a crash (or a leaked global) cannot poison its siblings;
* **failure containment** — :func:`run_trial` converts any exception
  into a ``status: "failed"`` record; one broken trial never aborts
  the campaign;
* **worker-death containment** — a pool worker that dies outright
  (SIGKILL, OOM, interpreter abort) breaks the pool, not the
  campaign: collateral trials re-run in a fresh pool and the trial
  that actually killed its worker is convicted by an isolation retry
  and recorded as ``status: "failed"``;
* **watchdog timeouts** — every simulated run carries the trial's
  ``max_events`` / ``max_sim_time`` budgets, so a livelocked trial
  fails with :class:`repro.errors.LivelockError` instead of hanging
  the pool;
* **cache** — hashes already present in the :class:`ResultCache` are
  served as hits and executed zero times, which is also the resume
  path after an interrupt.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec, Trial, trial_hash
from repro.campaign.stats import aggregate
from repro.errors import TrialQuarantined

__all__ = ["run_trial", "run_campaign", "CampaignRun", "DOCUMENT_VERSION"]

DOCUMENT_VERSION = 1


# --------------------------------------------------------------- workloads
def _topo(name: str):
    from repro.hw import presets

    try:
        return getattr(presets, name)()
    except AttributeError:
        raise ValueError(f"unknown machine preset {name!r}") from None


def _noise(config: dict):
    """The trial's noise model: explicitly seeded from the config."""
    if config["noise_sigma"] <= 0:
        return None
    from repro.sim.noise import NoiseModel

    return NoiseModel(seed=config["seed"], sigma=config["noise_sigma"])


def _faults(config: dict):
    """The trial's fault plan: same explicit seed as the noise stream."""
    if config["drop"] <= 0:
        return None
    from repro.faults import FaultPlan

    return FaultPlan(seed=config["seed"], drop=config["drop"])


def _obs(config: dict, trace_dir: Optional[str], profile: bool = False):
    """The trial's observability argument.

    Returns ``None`` (inert), or an :class:`~repro.obs.spans.ObsCollector`
    so :func:`run_trial` keeps a reference and can read the wall-clock
    recording back out after the workload finishes.  ``profile`` arms
    the wall profiler only — it never touches the trial config, so
    trial hashes (and therefore cache keys and the campaign document)
    are identical with profiling on or off.
    """
    if trace_dir is None and not profile:
        return None
    from repro.obs import ObsConfig
    from repro.obs.spans import ObsCollector

    chrome_path = None
    if trace_dir is not None:
        root = Path(trace_dir)
        root.mkdir(parents=True, exist_ok=True)
        chrome_path = str(root / f"{trial_hash(config)}.trace.json")
    cfg = ObsConfig(
        spans=trace_dir is not None,
        profile=profile,
        chrome_path=chrome_path,
    )
    return ObsCollector(config=cfg)


def _pingpong_main(nbytes: int, reps: int):
    def main(ctx):
        comm = ctx.comm
        buf = ctx.alloc(nbytes)
        peer = 1 - ctx.rank
        status = None
        start = None
        for rep in range(reps + 1):
            if rep == 1:  # rep 0 warms caches and rendezvous state
                start = ctx.now
            if ctx.rank == 0:
                yield comm.Send(buf, dest=peer, tag=rep)
                yield comm.Recv(buf, source=peer, tag=rep)
            else:
                status = yield comm.Recv(buf, source=peer, tag=rep)
                yield comm.Send(buf, dest=peer, tag=rep)
        if ctx.rank == 0:
            return (ctx.now - start) / (2 * reps)
        return getattr(status, "path", None)

    return main


def _run_pingpong(config: dict, obs) -> dict:
    from repro.units import mib_per_s

    nbytes = config["size"]
    main = _pingpong_main(nbytes, config["reps"])
    common = dict(
        mode=config["backend"],
        noise=_noise(config),
        faults=_faults(config),
        obs=obs,
        max_events=config["max_events"],
        max_sim_time=config["max_sim_time"],
    )
    if config["nnodes"] == 1:
        from repro.mpi.world import run_mpi

        result = run_mpi(
            _topo(config["machine"]), 2, main,
            bindings=list(config["pair"]), **common,
        )
    else:
        from repro.hw.presets import cluster_of
        from repro.mpi.cluster import run_cluster

        spec = cluster_of(_topo(config["machine"]), config["nnodes"])
        result = run_cluster(
            spec, 2, main, bindings=[(0, config["pair"][0]),
                                     (1, config["pair"][1])], **common,
        )
    one_way = result.results[0]
    metrics = {
        "one_way_seconds": one_way,
        "mib_per_s": mib_per_s(nbytes, one_way),
        "path": result.results[1],
        "elapsed": result.elapsed,
    }
    if config["nnodes"] > 1:
        fabric = result.fabric
        metrics["retransmits"] = sum(n.retransmits for n in fabric.nics)
        metrics["retries_exhausted"] = sum(
            n.retries_exhausted for n in fabric.nics
        )
        if fabric.faults is not None:
            metrics["drops_injected"] = fabric.faults.counters()[
                "drops_injected"
            ]
    return {"primary": "mib_per_s", **metrics}


def _run_allreduce(config: dict, obs) -> dict:
    from repro.hw.presets import cluster_of
    from repro.mpi.cluster import run_cluster
    from repro.mpi.coll.tuning import CollTuning

    nbytes = config["size"]
    reps = config["reps"]

    def main(ctx):
        from repro.mpi.coll.reduce import allreduce

        a = ctx.alloc(nbytes)
        b = ctx.alloc(nbytes)
        a.data[:] = ctx.rank + 1
        yield from allreduce(ctx.comm, a, b)  # warm scratch + caches
        t0 = ctx.now
        for _ in range(reps):
            yield from allreduce(ctx.comm, a, b)
        return (ctx.now - t0) / reps

    tuning = None
    if config["tuning"] == "flat":
        tuning = CollTuning(hier_bcast_min=1 << 40, hier_allreduce_min=1 << 40)
    nnodes = config["nnodes"]
    ppn = config["procs_per_node"]
    spec = cluster_of(_topo(config["machine"]), nnodes)
    result = run_cluster(
        spec, nnodes * ppn, main,
        procs_per_node=ppn,
        mode=config["backend"],
        coll_tuning=tuning,
        noise=_noise(config),
        faults=_faults(config),
        obs=obs,
        max_events=config["max_events"],
        max_sim_time=config["max_sim_time"],
    )
    seconds = max(result.results)
    return {
        "primary": "seconds",
        "seconds": seconds,
        "elapsed": result.elapsed,
    }


def _run_crossover(config: dict, obs) -> dict:
    from repro.core.autotune import find_ioat_crossover

    res = find_ioat_crossover(_topo(config["machine"]), tuple(config["pair"]))
    return {
        "primary": "crossover_bytes",
        "crossover_bytes": res.measured_crossover,
        "predicted_dmamin": res.predicted_dmamin,
    }


def _run_sched(config: dict, obs) -> dict:
    from repro.sched import Scheduler, mix_jobs

    sched = Scheduler(
        _topo(config["machine"]),
        policy=config["sched_policy"],
        obs=obs,
        max_events=config["max_events"],
        max_sim_time=config["max_sim_time"],
    )
    jobs = mix_jobs(
        config["job_mix"],
        size=config["size"],
        mode=config["backend"],
        seed=config["seed"],
        reps=config["reps"],
    )
    result = sched.run(jobs)
    slowdowns = [jr.slowdown for jr in result.jobs if jr.slowdown is not None]
    waits = [jr.wait_seconds for jr in result.jobs]
    return {
        "primary": "makespan_seconds",
        "makespan_seconds": result.makespan,
        "cross_job_l2_evictions": result.cross_job_evictions,
        "max_slowdown": max(slowdowns) if slowdowns else 1.0,
        "mean_wait_seconds": sum(waits) / len(waits),
        "ctx_switch_seconds": result.ctx_switch_seconds,
        "elapsed": result.makespan,
    }


def _run_nhood(config: dict, obs) -> dict:
    from repro.hw.presets import cluster_of
    from repro.mpi.cluster import run_cluster
    from repro.nhood import build_pattern, neighbor_alltoallv

    nnodes = config["nnodes"]
    ppn = config["procs_per_node"]
    p = nnodes * ppn
    # The campaign "size" axis is the per-edge halo byte count here.
    kwargs = {}
    if config["pattern"] == "irregular":
        kwargs = {"seed": config["seed"], "degree": min(12, p - 1)}
    cg = build_pattern(config["pattern"], p, config["size"], **kwargs)

    def main(ctx):
        g = cg.graph_of(ctx.rank)
        send = ctx.alloc(max(g.send_bytes, 1), name="nh.s")
        recv = ctx.alloc(max(g.recv_bytes, 1), name="nh.r")
        for _ in range(config["reps"]):
            yield neighbor_alltoallv(
                ctx.comm, cg, send, recv, strategy=config["strategy"]
            )
        return ctx.now

    result = run_cluster(
        cluster_of(_topo(config["machine"]), nnodes),
        p,
        main,
        procs_per_node=ppn,
        mode=config["backend"],
        noise=_noise(config),
        faults=_faults(config),
        obs=obs,
        max_events=config["max_events"],
        max_sim_time=config["max_sim_time"],
    )
    m = result.obs.metrics
    return {
        "primary": "seconds",
        "seconds": result.elapsed,
        "internode_msgs": int(m.counter("nhood.internode_msgs").value),
        "internode_bytes": int(m.counter("nhood.internode_bytes").value),
        "internode_msgs_saved": int(
            m.counter("nhood.internode_msgs_saved").value
        ),
        "elapsed": result.elapsed,
    }


def _run_offload(config: dict, obs) -> dict:
    """One offload trial: CPU copy vs the generation's offload engine
    at the trial's message size, shared-cache placement, pin-down cache
    armed (the per-size slice of ``repro-bench offload``)."""
    from repro.core.policy import LmtConfig
    from repro.mpi.world import run_mpi
    from repro.offload.bench import BINDINGS, GENERATIONS
    from repro.units import mib_per_s

    gen = next(
        g for g in GENERATIONS
        if g["generation"] == config["machine_generation"]
    )
    topo = _topo(gen["machine"])
    nbytes = config["size"]
    rates = {}
    for key, mode in (("cpu", gen["cpu_mode"]), ("offload", gen["offload_mode"])):
        main = _pingpong_main(nbytes, config["reps"])
        result = run_mpi(
            topo, 2, main,
            bindings=list(BINDINGS),
            mode=mode,
            config=LmtConfig(mode=mode, knem_reg_cache=True),
            noise=_noise(config),
            max_events=config["max_events"],
            max_sim_time=config["max_sim_time"],
        )
        rates[key] = mib_per_s(nbytes, result.results[0])
    return {
        "primary": "offload_mib_per_s",
        "offload_mib_per_s": rates["offload"],
        "cpu_mib_per_s": rates["cpu"],
        "cpu_mode": gen["cpu_mode"],
        "offload_mode": gen["offload_mode"],
        "offload_wins": rates["offload"] > rates["cpu"],
        "predicted_dmamin": topo.dmamin_bytes(2),
    }


_WORKLOAD_FNS: dict[str, Callable[[dict, object], dict]] = {
    "pingpong": _run_pingpong,
    "allreduce": _run_allreduce,
    "crossover": _run_crossover,
    "sched": _run_sched,
    "nhood": _run_nhood,
    "offload": _run_offload,
}


# ---------------------------------------------------------------- execution
def run_trial(
    config: dict, trace_dir: Optional[str] = None, profile: bool = False
) -> dict:
    """Execute one trial; never raises.

    Returns the trial record: ``{"hash", "config", "seed", "status",
    "primary", "metrics", "error"}`` with ``status`` of ``"ok"`` or
    ``"failed"``.  Module-level and dict-in/dict-out so it is picklable
    for the worker pool.

    ``profile`` arms the wall-clock flight recorder for the trial's
    engine and attaches its recording as a transient ``"wall"`` key —
    an *executor* parameter, never part of the config or hash, and
    :func:`run_campaign` strips it before records are cached or
    documented, so profiled and unprofiled campaigns stay
    byte-identical.
    """
    record = {
        "hash": trial_hash(config),
        "config": config,
        "seed": config.get("seed"),
        "status": "ok",
        "primary": None,
        "metrics": None,
        "error": None,
    }
    try:
        from repro.campaign.chaos import pool_kill_armed

        if pool_kill_armed(config):  # chaos harness: die before the trial
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        fn = _WORKLOAD_FNS[config["workload"]]
        obs = _obs(config, trace_dir, profile)
        metrics = fn(config, obs)
        record["primary"] = metrics.pop("primary")
        record["metrics"] = metrics
        if profile and obs is not None:
            record["wall"] = obs.prof.to_dict()
    except Exception as exc:  # one broken trial must never kill the run
        record["status"] = "failed"
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


@dataclass
class CampaignRun:
    """Outcome of :func:`run_campaign`: trials + ordered records."""

    spec: CampaignSpec
    trials: list[Trial]
    records: list[dict]
    #: Trial hashes poisoned out by the supervised fleet (a trial that
    #: failed deterministically ``retry_budget`` times); always empty
    #: for plain (unsupervised) runs.
    quarantined: list = field(default_factory=list)
    #: Fleet telemetry snapshot (leases, requeues, worker deaths) from
    #: a supervised run.  Deliberately NOT part of :meth:`document` —
    #: the document must be a pure function of the spec, so recovered
    #: and undisturbed runs compare byte-identical.
    fleet: Optional[dict] = None
    #: Aggregated wall-clock recording (a
    #: :class:`~repro.obs.prof.WallProfiler`) when the campaign ran
    #: with ``profile=True``; host-dependent, so — like ``fleet`` —
    #: never part of :meth:`document`.
    wall: Optional[object] = None

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records if not r["cached"])

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r["cached"])

    @property
    def failures(self) -> list[dict]:
        return [r for r in self.records if r["status"] == "failed"]

    def record_for(self, **config_items) -> dict:
        """The first record whose config contains all given items."""
        for record in self.records:
            cfg = record["config"]
            if all(cfg.get(k) == v for k, v in config_items.items()):
                return record
        raise KeyError(f"no trial matching {config_items}")

    def metrics_for(self, **config_items) -> dict:
        record = self.record_for(**config_items)
        if record["status"] != "ok":
            raise RuntimeError(
                f"trial {record['hash'][:12]} failed: {record['error']}"
            )
        return record["metrics"]

    def document(self) -> dict:
        """The campaign JSON (``BENCH_campaign.json`` shape)."""
        total = len(self.records)
        return {
            "version": DOCUMENT_VERSION,
            "kind": "campaign",
            "name": self.spec.name,
            "spec": self.spec.to_dict(),
            "seeds": [int(s) for s in self.spec.seeds],
            "summary": {
                "trials": total,
                "executed": self.executed,
                "cache_hits": self.cache_hits,
                "failures": len(self.failures),
                "quarantined": len(self.quarantined),
            },
            "quarantined": list(self.quarantined),
            "aggregates": aggregate(self.records),
            "trials": self.records,
        }

    def raise_for_quarantine(self) -> None:
        """Raise :class:`repro.errors.TrialQuarantined` if any trial
        exhausted its retry budget (strict-mode callers)."""
        if self.quarantined:
            raise TrialQuarantined(self.quarantined)

    def describe(self) -> str:
        total = len(self.records)
        hits = self.cache_hits
        pct = 100.0 * hits / total if total else 0.0
        line = (
            f"campaign {self.spec.name!r}: {total} trials | "
            f"executed {self.executed} | cache hits: {hits}/{total} "
            f"({pct:.1f}%) | failures {len(self.failures)}"
        )
        if self.quarantined:
            line += f" | quarantined {len(self.quarantined)}"
        return line


def _death_record(config: dict) -> dict:
    """The failed record for a trial whose pool worker died outright."""
    return {
        "hash": trial_hash(config),
        "config": config,
        "seed": config.get("seed"),
        "status": "failed",
        "primary": None,
        "metrics": None,
        "error": "WorkerDeath: pool worker died executing this trial "
        "(SIGKILL/OOM/interpreter abort)",
    }


def _pool_run(runner, configs: list[dict], workers: int) -> list[dict]:
    """``pool.map`` with worker-death containment.

    A dead worker makes *every* unfinished future raise
    :class:`BrokenProcessPool` without saying which trial killed it, so
    each suspect is retried alone in a single-worker pool: collateral
    trials succeed there, and a pool that breaks again convicts its
    only occupant, which becomes a ``status: "failed"`` record instead
    of an exception out of :func:`run_campaign`.
    """
    results: list[Optional[dict]] = [None] * len(configs)
    suspects: list[int] = []
    with ProcessPoolExecutor(max_workers=min(workers, len(configs))) as pool:
        futures = [pool.submit(runner, c) for c in configs]
        for i, future in enumerate(futures):
            try:
                results[i] = future.result()
            except BrokenProcessPool:
                suspects.append(i)
    for i in suspects:
        try:
            with ProcessPoolExecutor(max_workers=1) as solo:
                results[i] = solo.submit(runner, configs[i]).result()
        except BrokenProcessPool:
            results[i] = _death_record(configs[i])
    return results


def run_campaign(
    spec: CampaignSpec,
    cache: Optional[ResultCache] = None,
    workers: int = 0,
    trials: Optional[Sequence[Trial]] = None,
    trace_dir: Optional[str] = None,
    profile: bool = False,
) -> CampaignRun:
    """Expand ``spec`` and execute every trial not already cached.

    ``workers > 1`` fans the uncached trials over a multiprocessing
    pool; otherwise they run serially in-process.  ``trials`` overrides
    the spec expansion (used by tests and partial re-runs).  Cached
    failures are never served — a failed trial always re-executes.
    ``profile`` arms the wall-clock flight recorder per trial and
    aggregates the recordings into :attr:`CampaignRun.wall`; trial
    hashes, records and the campaign document are unaffected.
    """
    trials = list(trials) if trials is not None else spec.trials()
    trace_dir = trace_dir if trace_dir is not None else spec.trace_dir
    records: list[Optional[dict]] = [None] * len(trials)
    pending: list[tuple[int, Trial]] = []
    for i, trial in enumerate(trials):
        hit = cache.get(trial.hash) if cache is not None else None
        if (
            hit is not None
            and hit.get("status") == "ok"
            and hit.get("config") == trial.config
        ):
            records[i] = {**hit, "cached": True}
        else:
            pending.append((i, trial))
    wall = None
    if pending:
        configs = [t.config for _, t in pending]
        runner = partial(run_trial, trace_dir=trace_dir, profile=profile)
        if workers > 1 and len(configs) > 1:
            fresh = _pool_run(runner, configs, workers)
        else:
            fresh = [runner(c) for c in configs]
        for (i, trial), record in zip(pending, fresh):
            recording = record.pop("wall", None)
            if recording is not None:
                if wall is None:
                    from repro.obs.prof import WallProfiler

                    wall = WallProfiler()
                wall.merge_dict(recording)
            if cache is not None and record["status"] == "ok":
                cache.put(trial.hash, record)
            records[i] = {**record, "cached": False}
    return CampaignRun(spec=spec, trials=trials, records=records, wall=wall)
