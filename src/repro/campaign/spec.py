"""Declarative experiment campaigns: axes -> trials -> content hashes.

A :class:`CampaignSpec` names the axes of a study — machine preset,
LMT backend, message size, node count, injected drop rate, collective
tuning, and seeded replicates — and :meth:`CampaignSpec.trials`
expands their cross-product into :class:`Trial`\\ s.  Every trial
carries one *canonical config dict* (plain JSON types, sorted keys)
whose SHA-256 is the trial's identity: the executor keys the result
cache on it, so the same config always reuses the same stored result
and any axis change produces a new hash.

Replicates differ only in ``seed``; :func:`group_config` strips the
seed so :mod:`repro.campaign.stats` can aggregate across them.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields
from typing import Optional

from repro.core.policy import MODES
from repro.errors import BenchmarkError
from repro.units import KiB, fmt_size

__all__ = [
    "WORKLOADS",
    "MACHINES",
    "MACHINE_GENERATIONS",
    "CampaignSpec",
    "Trial",
    "canonical_json",
    "trial_hash",
    "group_config",
    "group_label",
]

#: Workloads the executor knows how to run (see repro.campaign.executor).
WORKLOADS = ("pingpong", "allreduce", "crossover", "sched", "nhood", "offload")

#: Machine presets a trial config may name (see repro.hw.presets).
MACHINES = ("xeon_e5345", "xeon_x5460", "nehalem8", "modern_server")

#: Machine generations the "offload" workload may sweep (each names a
#: preset; the generation label is the offload bench's vocabulary).
MACHINE_GENERATIONS = ("nehalem-era", "modern")

#: Bumped whenever trial semantics change incompatibly; salted into
#: every hash so stale cached results can never be mistaken for fresh.
_SCHEMA_VERSION = 1


def canonical_json(config: dict) -> str:
    """The one serialization of a config dict (sorted keys, no spaces)."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"))


def trial_hash(config: dict) -> str:
    """Stable content hash of a canonical trial config."""
    payload = f"repro.campaign/v{_SCHEMA_VERSION}:{canonical_json(config)}"
    return hashlib.sha256(payload.encode()).hexdigest()


def group_config(config: dict) -> dict:
    """The config with the replicate axis removed (aggregation key)."""
    return {k: v for k, v in config.items() if k != "seed"}


def group_label(config: dict) -> str:
    """Human-readable name of a replicate group, stable across runs."""
    parts = [
        config["workload"],
        config["machine"],
        config["backend"],
        fmt_size(config["size"]),
        f"n{config['nnodes']}",
    ]
    pair = config.get("pair")
    if pair and tuple(pair) != (0, 1):
        parts.append(f"c{pair[0]}-{pair[1]}")
    if config.get("drop"):
        parts.append(f"drop{config['drop']:g}")
    if config.get("tuning", "default") != "default":
        parts.append(config["tuning"])
    # Scheduler axes only exist on "sched" trials, so legacy labels
    # (and the committed baseline documents keyed on them) never move.
    if "sched_policy" in config:
        parts.append(config["sched_policy"])
    if "job_mix" in config:
        parts.append(config["job_mix"])
    # Likewise the neighborhood axes only exist on "nhood" trials.
    if "pattern" in config:
        parts.append(config["pattern"])
    if "strategy" in config:
        parts.append(config["strategy"])
    # And the generation axis only exists on "offload" trials.
    if "machine_generation" in config:
        parts.append(config["machine_generation"])
    return "/".join(parts)


@dataclass(frozen=True)
class Trial:
    """One point of the cross-product: a canonical config plus its hash."""

    config: dict

    @property
    def hash(self) -> str:
        return trial_hash(self.config)

    @property
    def short(self) -> str:
        return self.hash[:12]

    @property
    def seed(self) -> int:
        return self.config["seed"]

    @property
    def group(self) -> str:
        """Hash-stable aggregation key (config minus the seed)."""
        return canonical_json(group_config(self.config))

    @property
    def label(self) -> str:
        return group_label(self.config)

    def describe(self) -> str:
        return f"{self.label} seed={self.seed} [{self.short}]"


@dataclass(frozen=True)
class CampaignSpec:
    """Axes of one experiment campaign.

    Every tuple field is an axis; scalars apply to all trials.  The
    expansion order is fixed (machine, backend, size, nnodes, pair,
    drop, tuning, seed) so trial lists — and therefore executor queue
    order — are deterministic for a given spec.
    """

    name: str = "campaign"
    workload: str = "pingpong"
    machines: tuple = ("xeon_e5345",)
    backends: tuple = ("default",)
    sizes: tuple = (256 * KiB,)
    nnodes: tuple = (1,)
    #: Core pairs for point-to-point workloads (shared vs remote cache).
    pairs: tuple = ((0, 1),)
    #: Injected wire drop rates (FaultPlan axis; 0.0 = no faults armed).
    drops: tuple = (0.0,)
    #: Collective tuning: "default" (hierarchy on) or "flat".
    tunings: tuple = ("default",)
    #: Noise-seed replicates; one trial per seed per config point.
    seeds: tuple = (0,)
    #: Pingpong round trips (or timed allreduce iterations) per trial.
    reps: int = 2
    #: Ranks per node for collective workloads (allreduce).
    procs_per_node: int = 2
    #: Lognormal jitter width; 0.0 runs the simulator deterministically.
    noise_sigma: float = 0.02
    #: Per-trial Engine watchdog budgets (LivelockError past either).
    max_events: int = 20_000_000
    max_sim_time: float = 60.0
    #: Scheduling-policy axis, used only by the "sched" workload (the
    #: keys are absent from other workloads' configs, so legacy trial
    #: hashes and labels are untouched).
    sched_policies: tuple = ("fifo",)
    #: Job-mix axis of the "sched" workload (see repro.sched.job).
    job_mixes: tuple = ("pair",)
    #: Graph-pattern axis of the "nhood" workload (see repro.nhood) —
    #: like the scheduler axes, the keys never enter other workloads'
    #: configs, so legacy trial hashes are untouched.
    patterns: tuple = ("irregular",)
    #: Strategy axis of the "nhood" workload.
    strategies: tuple = ("direct", "node-aware")
    #: Machine-generation axis of the "offload" workload (each names a
    #: hardware era from repro.offload.bench.GENERATIONS; the trial's
    #: ``machine``/``backend`` axes are ignored there — the generation
    #: fixes both).  Keys never enter other workloads' configs, so
    #: legacy trial hashes are untouched.
    machine_generations: tuple = MACHINE_GENERATIONS
    #: When set, each executed trial writes a Perfetto trace to
    #: ``<trace_dir>/<hash>.trace.json`` (not part of the trial hash).
    trace_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise BenchmarkError(
                f"unknown workload {self.workload!r}; pick one of {WORKLOADS}"
            )
        for m in self.machines:
            if m not in MACHINES:
                raise BenchmarkError(
                    f"unknown machine preset {m!r}; pick from {MACHINES}"
                )
        for b in self.backends:
            if b not in MODES:
                raise BenchmarkError(
                    f"unknown LMT backend {b!r}; pick one of {MODES}"
                )
        for axis in ("machines", "backends", "sizes", "nnodes", "pairs",
                     "drops", "tunings", "seeds"):
            if not getattr(self, axis):
                raise BenchmarkError(f"campaign axis {axis!r} is empty")
        if any(s <= 0 for s in self.sizes):
            raise BenchmarkError(f"non-positive message size in {self.sizes}")
        if any(n < 1 for n in self.nnodes):
            raise BenchmarkError(f"node counts must be >= 1, got {self.nnodes}")
        for t in self.tunings:
            if t not in ("default", "flat"):
                raise BenchmarkError(f"tuning must be 'default' or 'flat': {t!r}")
        if self.reps < 1:
            raise BenchmarkError(f"reps must be >= 1, got {self.reps}")
        if self.procs_per_node < 1:
            raise BenchmarkError(
                f"procs_per_node must be >= 1, got {self.procs_per_node}"
            )
        if not 0.0 <= self.noise_sigma <= 0.5:
            raise BenchmarkError(f"noise_sigma out of [0, 0.5]: {self.noise_sigma}")
        if self.workload == "sched":
            # Imported lazily: spec.py stays light for non-sched specs.
            from repro.sched.job import JOB_MIXES
            from repro.sched.scheduler import SCHED_POLICIES

            if not self.sched_policies or not self.job_mixes:
                raise BenchmarkError(
                    "sched campaigns need non-empty sched_policies and "
                    "job_mixes axes"
                )
            for p in self.sched_policies:
                if p not in SCHED_POLICIES:
                    raise BenchmarkError(
                        f"unknown sched policy {p!r}; pick from {SCHED_POLICIES}"
                    )
            for m in self.job_mixes:
                if m not in JOB_MIXES:
                    raise BenchmarkError(
                        f"unknown job mix {m!r}; pick from {JOB_MIXES}"
                    )
        if self.workload == "offload":
            if not self.machine_generations:
                raise BenchmarkError(
                    "offload campaigns need a non-empty machine_generations "
                    "axis"
                )
            for g in self.machine_generations:
                if g not in MACHINE_GENERATIONS:
                    raise BenchmarkError(
                        f"unknown machine generation {g!r}; pick from "
                        f"{MACHINE_GENERATIONS}"
                    )
        if self.workload == "nhood":
            from repro.nhood.patterns import PATTERNS
            from repro.nhood.strategy import STRATEGIES

            if not self.patterns or not self.strategies:
                raise BenchmarkError(
                    "nhood campaigns need non-empty patterns and "
                    "strategies axes"
                )
            for pat in self.patterns:
                if pat not in PATTERNS:
                    raise BenchmarkError(
                        f"unknown pattern {pat!r}; pick from {PATTERNS}"
                    )
            for s in self.strategies:
                if s not in STRATEGIES:
                    raise BenchmarkError(
                        f"unknown strategy {s!r}; pick from {STRATEGIES}"
                    )

    def trials(self) -> list[Trial]:
        """Expand the cross-product into deterministic trial order."""
        out = []
        # The scheduler axes multiply the product only for the "sched"
        # workload; elsewhere they contribute a single empty variant and
        # the keys never enter the config (hash compatibility).
        if self.workload == "sched":
            sched_axes = list(itertools.product(self.sched_policies, self.job_mixes))
        else:
            sched_axes = [(None, None)]
        # Same scheme for the neighborhood axes.
        if self.workload == "nhood":
            nhood_axes = list(itertools.product(self.patterns, self.strategies))
        else:
            nhood_axes = [(None, None)]
        # For the "offload" workload the generation axis *replaces* the
        # machine x backend product: each generation fixes its preset
        # and its offload engine mode (repro.offload.bench.GENERATIONS),
        # so sweeping machines/backends independently would only mint
        # duplicate configs.  Other workloads keep the legacy product
        # untouched — same loop values, same configs, same hashes.
        if self.workload == "offload":
            from repro.offload.bench import GENERATIONS

            gen_map = {g["generation"]: g for g in GENERATIONS}
            mb_axes = [
                (gen_map[g]["machine"], gen_map[g]["offload_mode"], g)
                for g in self.machine_generations
            ]
        else:
            mb_axes = [
                (m, b, None)
                for m, b in itertools.product(self.machines, self.backends)
            ]
        for (machine, backend, generation), size, nn, pair, drop, tuning, (
            pol, mix
        ), (pattern, strategy), seed in itertools.product(
            mb_axes, self.sizes, self.nnodes,
            self.pairs, self.drops, self.tunings, sched_axes, nhood_axes,
            self.seeds,
        ):
            config = {
                "workload": self.workload,
                "machine": machine,
                "backend": backend,
                "size": int(size),
                "nnodes": int(nn),
                "pair": [int(pair[0]), int(pair[1])],
                "drop": float(drop),
                "tuning": tuning,
                "seed": int(seed),
                "reps": int(self.reps),
                "procs_per_node": int(self.procs_per_node),
                "noise_sigma": float(self.noise_sigma),
                "max_events": int(self.max_events),
                "max_sim_time": float(self.max_sim_time),
            }
            if pol is not None:
                config["sched_policy"] = pol
                config["job_mix"] = mix
            if pattern is not None:
                config["pattern"] = pattern
                config["strategy"] = strategy
            if generation is not None:
                config["machine_generation"] = generation
            out.append(Trial(config=config))
        return out

    def to_dict(self) -> dict:
        """JSON form embedded in campaign documents."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        """Rebuild a spec from its :meth:`to_dict` JSON form.

        JSON turns tuples into lists, so every axis is coerced back
        (``pairs`` into a tuple of 2-tuples); the rebuilt spec's
        :meth:`trials` are identical to the original's — this is what
        makes a spec submitted over the service wire hash-compatible
        with the same spec run locally.  Unknown keys are rejected:
        silently dropping an axis would change the trial set.
        """
        if not isinstance(payload, dict):
            raise BenchmarkError(f"campaign spec must be a dict, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise BenchmarkError(f"unknown campaign spec field(s): {', '.join(unknown)}")
        kwargs = dict(payload)
        for axis in ("machines", "backends", "sizes", "nnodes", "drops",
                     "tunings", "seeds", "sched_policies", "job_mixes",
                     "patterns", "strategies", "machine_generations"):
            if axis in kwargs:
                kwargs[axis] = tuple(kwargs[axis])
        if "pairs" in kwargs:
            kwargs["pairs"] = tuple(tuple(p) for p in kwargs["pairs"])
        return cls(**kwargs)

    def describe(self) -> str:
        axes = (
            f"{len(self.machines)} machine(s) x {len(self.backends)} "
            f"backend(s) x {len(self.sizes)} size(s)"
        )
        extra = len(self.nnodes) * len(self.pairs) * len(self.drops) * len(
            self.tunings
        )
        if extra > 1:
            axes += f" x {extra} variant(s)"
        return (
            f"campaign {self.name!r}: {self.workload}, {axes}, "
            f"{len(self.seeds)} seed(s) -> {len(self.trials())} trials"
        )
