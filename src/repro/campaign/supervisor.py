"""Crash-tolerant campaign fleet: supervised workers over a lease queue.

:func:`run_supervised` is ``run_campaign`` with a survival story.
Trials are dispatched through a durable
:class:`~repro.campaign.queue.LeaseQueue`; worker *processes* execute
them under heartbeat leases, and the supervisor enforces three
independent death detectors:

* **exitcode** — the worker process is gone (SIGKILL, OOM, segfault);
* **missed heartbeats** — the process exists but its heartbeat thread
  stopped updating the shared timestamp;
* **lease deadline** — the trial ran past its wall-clock budget (a
  hung worker that still heartbeats).

Any of the three SIGKILLs the worker (if needed), reconciles its lease
— completed-from-store if the result landed before death, requeued
otherwise — and respawns the slot with fresh queues, so one torn pipe
can never poison the fleet.  Deterministic failures consume the
per-trial retry budget with exponential backoff and quarantine after
exactly ``retry_budget`` attempts; kills requeue for free.  The final
:class:`~repro.campaign.executor.CampaignRun` document is therefore a
pure function of the spec: byte-identical no matter how many workers
died along the way (the chaos harness proves it).

Protocol notes: the *worker* appends the durable ``complete`` journal
event immediately after its store write (the two-phase commit's second
phase), so the supervisor only reconciles; result records travel back
over a per-incarnation queue, and a stale report — the worker was
presumed dead and its lease re-granted — fails with
:class:`repro.errors.LeaseExpired` and is dropped.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as stdlib_queue
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.campaign.cache import ResultCache
from repro.campaign.chaos import ChaosPlan, ChaosState
from repro.campaign.executor import CampaignRun, run_trial
from repro.campaign.queue import Lease, LeaseQueue, append_event
from repro.campaign.spec import CampaignSpec, Trial, canonical_json, trial_hash
from repro.errors import CampaignError, LeaseExpired

__all__ = ["run_supervised", "FleetConfig"]

#: Seconds between heartbeat updates inside a worker.
HEARTBEAT_INTERVAL = 0.05


@dataclass(frozen=True)
class FleetConfig:
    """Supervision knobs, bundled so callers and the CLI share defaults."""

    workers: int = 2
    #: Wall-clock budget per leased trial (the watchdog).
    lease_ttl: float = 60.0
    #: Max heartbeat age before a live process is presumed wedged.
    heartbeat_timeout: float = 10.0
    #: Deterministic failures allowed before quarantine.
    retry_budget: int = 3
    #: First retry backoff; doubles per failure.
    backoff_base: float = 0.05
    #: Supervisor poll interval.
    poll: float = 0.02
    #: Overall wall-clock ceiling (None = unbounded).
    max_wall: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise CampaignError(f"workers must be >= 1, got {self.workers}")
        if self.lease_ttl <= 0 or self.heartbeat_timeout <= 0:
            raise CampaignError("lease_ttl and heartbeat_timeout must be > 0")


# ------------------------------------------------------------------ worker
def _chaos_die(journal: Path, trial: str, attempt: int, point: str) -> None:
    """Journal the injected kill, then die without cleanup."""
    append_event(journal, {
        "ev": "chaos", "hash": trial, "attempt": attempt, "point": point,
    })
    if point == "hang":
        time.sleep(3600.0)
    os.kill(os.getpid(), signal.SIGKILL)


def _torn_bytes(text: str) -> str:
    """The front half of a serialized record: a torn write."""
    return text[: max(4, len(text) // 2)]


def _worker_main(
    slot: int,
    incarnation: int,
    task_q,
    done_q,
    hb,
    store_url: str,
    trace_dir: Optional[str],
    journal_path: str,
    plan: Optional[ChaosPlan],
) -> None:
    """Worker loop: lease in, run (or serve from store), commit, report."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            hb.value = time.time()
            stop.wait(HEARTBEAT_INTERVAL)

    threading.Thread(target=beat, daemon=True).start()
    journal = Path(journal_path)
    chaos = ChaosState(plan) if plan is not None and plan.armed else None
    if chaos is not None and chaos.spawn_kill(slot, incarnation):
        append_event(journal, {
            "ev": "chaos", "slot": slot, "incarnation": incarnation,
            "point": "spawn",
        })
        os.kill(os.getpid(), signal.SIGKILL)
    cache = ResultCache.open(store_url)
    while True:
        task = task_q.get()
        if task is None:
            break
        config, attempt, token = task
        h = trial_hash(config)
        point = chaos.kill_point(h, attempt) if chaos is not None else None
        if point in ("mid-trial", "hang"):
            _chaos_die(journal, h, attempt, point)
        hit = cache.get(h)
        if hit is not None and hit.get("status") == "ok" \
                and hit.get("config") == config:
            record = dict(hit)  # an earlier attempt committed before dying
        else:
            record = run_trial(config, trace_dir)
        if record["status"] == "ok":
            if point == "store-write":
                # Model a non-atomic store (power loss after the rename's
                # metadata but before the data blocks): leave a torn
                # record at the *final* path, then die.  Recovery must
                # self-heal it and re-run.
                append_event(journal, {
                    "ev": "chaos", "hash": h, "attempt": attempt,
                    "point": point,
                })
                cache.path(h).write_text(_torn_bytes(canonical_json(record)))
                os.kill(os.getpid(), signal.SIGKILL)
            cache.put(h, record)
            complete = {
                "ev": "complete", "hash": h, "worker": f"w{slot}.{incarnation}",
                "attempt": attempt, "token": token,
            }
            if point == "journal-append":
                # Die halfway through the commit's second phase: half a
                # line, no newline.  Replay must skip the fragment and
                # reconcile the trial from the store.
                append_event(journal, {
                    "ev": "chaos", "hash": h, "attempt": attempt,
                    "point": point,
                })
                fd = os.open(journal, os.O_WRONLY | os.O_APPEND | os.O_CREAT)
                os.write(fd, _torn_bytes(canonical_json(complete)).encode())
                os.fsync(fd)
                os.kill(os.getpid(), signal.SIGKILL)
            append_event(journal, complete)
        done_q.put((record["status"], h, attempt, token, record))


# --------------------------------------------------------------- supervisor
@dataclass
class _Slot:
    slot: int
    incarnation: int = 0
    proc: Optional[multiprocessing.Process] = None
    task_q: object = None
    done_q: object = None
    hb: object = None
    lease: Optional[Lease] = None
    config: Optional[dict] = None
    #: Wall clock at dispatch of the current lease (trial latency).
    dispatch_t: float = 0.0

    @property
    def worker_id(self) -> str:
        return f"w{self.slot}.{self.incarnation}"


class _Fleet:
    """One supervised drain of a lease queue."""

    #: Respawns per slot before the supervisor gives up (a backstop far
    #: above what any finite chaos plan can cause).
    MAX_INCARNATIONS = 64

    def __init__(
        self,
        queue: LeaseQueue,
        configs: dict[str, dict],
        cache: ResultCache,
        trace_dir: Optional[str],
        fleet: FleetConfig,
        chaos: Optional[ChaosPlan],
        metrics,
        telemetry=None,
    ) -> None:
        self.queue = queue
        self.configs = configs
        self.cache = cache
        self.trace_dir = trace_dir
        self.cfg = fleet
        self.chaos = chaos
        self.metrics = metrics
        #: Optional :class:`~repro.campaign.telemetry.FleetTelemetry`;
        #: ticked once per supervision loop iteration.
        self.telemetry = telemetry
        self.records: dict[str, dict] = {}
        self.ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        self.slots = [_Slot(slot=i) for i in range(fleet.workers)]

    # ------------------------------------------------------------- workers
    def _spawn(self, slot: _Slot) -> None:
        slot.incarnation += 1
        if slot.incarnation > self.MAX_INCARNATIONS:
            raise CampaignError(
                f"worker slot {slot.slot} died {self.MAX_INCARNATIONS} "
                "times; giving up"
            )
        slot.task_q = self.ctx.SimpleQueue()
        slot.done_q = self.ctx.Queue()
        slot.hb = self.ctx.Value("d", time.time(), lock=False)
        slot.lease = None
        slot.config = None
        slot.proc = self.ctx.Process(
            target=_worker_main,
            args=(
                slot.slot, slot.incarnation, slot.task_q, slot.done_q,
                slot.hb, self.cache.url, self.trace_dir,
                str(self.queue.path), self.chaos,
            ),
            daemon=True,
            name=f"campaign-{slot.worker_id}",
        )
        slot.proc.start()
        self.metrics.counter("campaign.worker_spawns").inc()

    def _kill(self, slot: _Slot, why: str) -> None:
        self.metrics.counter(f"campaign.{why}").inc()
        if slot.proc.is_alive():
            slot.proc.kill()
        slot.proc.join(timeout=5.0)

    def _reconcile_death(self, slot: _Slot, now: float, detector: str) -> None:
        """A worker died: count it, settle its lease, respawn the slot.

        ``detector`` names which of the three independent death
        detectors fired (``exitcode`` / ``heartbeat`` / ``deadline``)
        so the fleet report can break deaths down by cause.
        """
        self.metrics.counter("campaign.worker_deaths").inc()
        self.metrics.counter(f"campaign.deaths.{detector}").inc()
        self.queue.heal_tail()
        self._drain(slot, now)  # reports sent before death still count
        lease = slot.lease
        if lease is not None:
            hit = self.cache.get(lease.trial)
            if hit is not None and hit.get("status") == "ok" \
                    and hit.get("config") == self.configs[lease.trial]:
                # Died between the store write and the journal append
                # (or the report): the result is durable — keep it.
                try:
                    self.queue.note_complete(lease)
                except LeaseExpired:
                    pass
                else:
                    self.queue.complete_external(lease.trial, "worker-death")
                self.records[lease.trial] = dict(hit)
            else:
                try:
                    self.queue.requeue(lease, reason="worker-death")
                    self.metrics.counter("campaign.requeues").inc()
                except LeaseExpired:
                    pass
        self._spawn(slot)

    # ------------------------------------------------------------ messages
    def _drain(self, slot: _Slot, now: float) -> None:
        while True:
            try:
                status, h, attempt, token, record = slot.done_q.get_nowait()
            except (stdlib_queue.Empty, OSError, EOFError):
                return
            lease = slot.lease
            if lease is None or lease.token != token:
                continue  # stale report from a reclaimed lease
            self.records[h] = record
            self.metrics.histogram("wall.trial.seconds").observe(
                max(0.0, now - slot.dispatch_t)
            )
            try:
                if status == "ok":
                    self.queue.note_complete(lease)
                else:
                    outcome = self.queue.fail(lease, record["error"], now)
                    self.metrics.counter("campaign.trial_failures").inc()
                    if outcome == "quarantined":
                        self.metrics.counter("campaign.quarantines").inc()
            except LeaseExpired:
                pass
            slot.lease = None
            slot.config = None

    # ----------------------------------------------------------- main loop
    def drain_queue(self) -> None:
        t0 = time.time()
        for slot in self.slots:
            self._spawn(slot)
        try:
            while not self.queue.all_settled:
                now = time.time()
                if self.cfg.max_wall is not None and now - t0 > self.cfg.max_wall:
                    raise CampaignError(
                        f"supervisor exceeded max_wall={self.cfg.max_wall}s "
                        f"({self.queue.describe()})"
                    )
                for slot in self.slots:
                    self._drain(slot, now)
                for slot in self.slots:
                    age = now - slot.hb.value
                    self.metrics.gauge(
                        f"campaign.worker.{slot.slot}.heartbeat_age_s"
                    ).set(max(0.0, age))
                    if slot.proc.exitcode is not None:
                        self._reconcile_death(slot, now, "exitcode")
                    elif slot.lease is not None and now > slot.lease.deadline:
                        self._kill(slot, "watchdog_kills")
                        self._reconcile_death(slot, now, "deadline")
                    elif age > self.cfg.heartbeat_timeout:
                        self._kill(slot, "heartbeat_kills")
                        self._reconcile_death(slot, now, "heartbeat")
                dispatched = False
                for slot in self.slots:
                    if slot.lease is not None or slot.proc.exitcode is not None:
                        continue
                    lease = self.queue.lease(
                        slot.worker_id, now, self.cfg.lease_ttl
                    )
                    if lease is None:
                        break
                    slot.lease = lease
                    slot.config = self.configs[lease.trial]
                    slot.dispatch_t = now
                    self.metrics.counter("campaign.leases").inc()
                    slot.task_q.put((slot.config, lease.attempt, lease.token))
                    dispatched = True
                if self.telemetry is not None:
                    self.telemetry.maybe_write()
                if not dispatched:
                    time.sleep(self.cfg.poll)
        finally:
            for slot in self.slots:
                try:
                    slot.task_q.put(None)
                except (OSError, ValueError):
                    pass
            for slot in self.slots:
                slot.proc.join(timeout=2.0)
                if slot.proc.is_alive():
                    slot.proc.kill()
                    slot.proc.join(timeout=5.0)


def run_supervised(
    spec: CampaignSpec,
    cache: ResultCache,
    *,
    state_dir: str | Path,
    workers: int = 2,
    trials: Optional[Sequence[Trial]] = None,
    trace_dir: Optional[str] = None,
    chaos: Optional[ChaosPlan] = None,
    retry_budget: int = 3,
    lease_ttl: float = 60.0,
    heartbeat_timeout: float = 10.0,
    backoff_base: float = 0.05,
    poll: float = 0.02,
    max_wall: Optional[float] = None,
) -> CampaignRun:
    """Drain ``spec`` through the crash-tolerant fleet.

    Same contract as :func:`repro.campaign.executor.run_campaign` —
    records in spec-expansion order, cache hits served without
    execution — plus: survives worker death at any point (journal
    recovery is exact), quarantines deterministically failing trials
    after ``retry_budget`` attempts, and never hangs on a wedged
    worker.  The result store is mandatory here: it is the crash
    consistency substrate, not an optimization.
    """
    if cache is None:
        raise CampaignError(
            "supervised campaigns need a ResultCache: the store is the "
            "crash-consistency substrate (use run_campaign for cacheless "
            "one-shots)"
        )
    if not cache.shared:
        raise CampaignError(
            f"supervised campaigns need a cross-process store; the "
            f"{cache.store.kind!r} backing is process-local (use the "
            "directory or sqlite store)"
        )
    fleet_cfg = FleetConfig(
        workers=workers, lease_ttl=lease_ttl,
        heartbeat_timeout=heartbeat_timeout, retry_budget=retry_budget,
        backoff_base=backoff_base, poll=poll, max_wall=max_wall,
    )
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    trials = list(trials) if trials is not None else spec.trials()
    trace_dir = trace_dir if trace_dir is not None else spec.trace_dir
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    cache.sweep_tmp()
    records: list[Optional[dict]] = [None] * len(trials)
    pending: list[Trial] = []
    for i, trial in enumerate(trials):
        hit = cache.get(trial.hash)
        if (
            hit is not None
            and hit.get("status") == "ok"
            and hit.get("config") == trial.config
        ):
            records[i] = {**hit, "cached": True}
            metrics.counter("campaign.cache_hits").inc()
        else:
            pending.append(trial)
    queue = LeaseQueue(
        state_dir / "journal.jsonl",
        [t.hash for t in pending],
        retry_budget=retry_budget,
        backoff_base=backoff_base,
        name=spec.name,
        metrics=metrics,
    )
    recovered = queue.recover(
        lambda h: (lambda hit: hit is not None and hit.get("status") == "ok")(
            cache.get(h)
        )
    )
    metrics.counter("campaign.requeues").inc(recovered["requeued"])
    from repro.campaign.telemetry import FleetTelemetry

    telemetry = FleetTelemetry(
        metrics, queue=queue, cache=cache, out_dir=state_dir, name=spec.name
    )
    configs = {t.hash: t.config for t in pending}
    if pending:
        fleet = _Fleet(
            queue, configs, cache, trace_dir, fleet_cfg, chaos, metrics,
            telemetry=telemetry,
        )
        fleet.drain_queue()
        fresh = fleet.records
    else:
        fresh = {}
    # Final flush: the on-disk status must agree with the report this
    # function returns, even for an all-cached (zero-dispatch) resume.
    telemetry.write()
    by_hash = {t.hash: i for i, t in enumerate(trials)}
    quarantined = []
    for trial in pending:
        i = by_hash[trial.hash]
        state = queue.states[trial.hash]
        if trial.hash in fresh:
            records[i] = {**fresh[trial.hash], "cached": False}
        elif state.status == "done":
            # Completed by recovery reconciliation: the record is in
            # the store even though no worker reported it this run.
            records[i] = {**cache.get(trial.hash), "cached": False}
        else:
            # Quarantined before this run produced a fresh record
            # (resume after a supervisor crash): synthesize the same
            # failed record a live attempt would have reported.
            records[i] = {
                "hash": trial.hash,
                "config": trial.config,
                "seed": trial.config.get("seed"),
                "status": "failed",
                "primary": None,
                "metrics": None,
                "error": state.error
                or f"TrialQuarantined: {retry_budget} failed attempt(s)",
                "cached": False,
            }
        if state.status == "quarantined":
            quarantined.append(trial.hash)
    return CampaignRun(
        spec=spec,
        trials=trials,
        records=records,
        quarantined=quarantined,
        fleet=metrics.snapshot(),
    )
