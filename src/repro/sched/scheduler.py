"""The multi-tenant job scheduler.

One :class:`Scheduler` owns one shared simulated machine.  Jobs
(:class:`~repro.sched.job.JobSpec`) arrive over simulated time, wait in
a queue, get placed on cores by a pluggable policy, and run as ordinary
:class:`~repro.mpi.world.MpiWorld` MPI jobs — *all on the same engine
and the same machine*, so co-located jobs contend through the very same
:class:`~repro.hw.cache.ExtentLRUCache` hierarchy the single-job
benchmarks exercise.  That is the point: the paper's cache-pollution
argument (shm double-buffering streams both buffers through the shared
L2; I/OAT DMA bypasses it) becomes a *cross-job* effect you can
schedule around.

Scheduling policies:

``fifo``
    Strict arrival order with space sharing: the head of the queue
    waits for enough idle cores; nothing overtakes it.
``backfill``
    Space sharing, but any queued job that fits the currently idle
    cores may start ahead of a blocked head (classic EASY-style
    backfill without reservations — safe here because job runtimes are
    unknown to the scheduler).
``gang``
    Time sharing: every job starts at arrival, all ranks co-scheduled.
    Cores may be oversubscribed; the
    :class:`~repro.sim.resources.ProcessorSharing` cores stretch all
    residents proportionally and a per-core context-switch daemon
    charges ``ctx_switch`` seconds of core time per resident job per
    ``quantum`` while a core is shared.  The daemon exits as soon as
    the core drops back to one job, so the event heap always drains —
    gang runs are watchdog-safe by construction.

Placement within a policy follows the job's ``placement`` preference
(``packed`` = compact core order, maximizing cache sharing inside the
job; ``spread`` = round-robin across dies, minimizing it), built on the
same orders as :func:`repro.mpi.affinity.bindings_for`.

Every job gets an isolated-baseline rerun (same topology, same
bindings, empty machine) after the shared run; ``slowdown`` is the
ratio of co-scheduled to isolated runtime — the multi-tenancy tax,
broken down by the interference ledger into who evicted whom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.policy import LmtConfig, LmtPolicy
from repro.errors import DeadlockError, SchedError
from repro.hw.machine import Machine
from repro.hw.topology import TopologySpec
from repro.kernel.address_space import AddressSpace
from repro.mpi.affinity import bindings_for
from repro.mpi.world import MpiWorld, RankContext
from repro.sched.interference import InterferenceLedger
from repro.sched.job import JobSpec, workload_main
from repro.sim.engine import Engine

__all__ = ["Scheduler", "JobResult", "SchedResult", "SCHED_POLICIES", "run_jobs"]

#: The scheduling policies :class:`Scheduler` understands.
SCHED_POLICIES = ("fifo", "backfill", "gang")


@dataclass
class JobResult:
    """Outcome of one job in a shared run."""

    job_id: int
    spec: JobSpec
    bindings: list[int]
    #: Simulated times: submission, placement, completion.
    arrival: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    #: Runtime of the identical job alone on an identical machine.
    isolated_seconds: Optional[float] = None
    #: Interference breakdown from the ledger (who evicted whom).
    interference: dict = field(default_factory=dict)
    results: list = field(default_factory=list)

    @property
    def wait_seconds(self) -> float:
        return self.started - self.arrival

    @property
    def duration(self) -> float:
        return self.finished - self.started

    @property
    def slowdown(self) -> Optional[float]:
        """Co-scheduled runtime over isolated runtime (>= 1 when the
        machine hurts you, ~1 when your neighbours stay out of your
        cache)."""
        if not self.isolated_seconds:
            return None
        return self.duration / self.isolated_seconds

    def document(self) -> dict:
        """JSON-stable record (everything deterministic, sorted use)."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "workload": self.spec.workload,
            "nprocs": self.spec.nprocs,
            "size": self.spec.size,
            "reps": self.spec.reps,
            "mode": self.spec.mode,
            "placement": self.spec.placement,
            "bindings": list(self.bindings),
            "arrival": self.arrival,
            "started": self.started,
            "finished": self.finished,
            "wait_seconds": self.wait_seconds,
            "duration_seconds": self.duration,
            "isolated_seconds": self.isolated_seconds,
            "slowdown": self.slowdown,
            "interference": self.interference,
        }


@dataclass
class SchedResult:
    """Outcome of one :meth:`Scheduler.run`."""

    policy: str
    jobs: list[JobResult]
    makespan: float
    #: Total cache lines any job lost to another job's CPU streams.
    cross_job_evictions: int
    #: (evictor job_id | -1, victim job_id) -> lines.
    pair_evictions: dict
    ctx_switch_seconds: float
    metrics: dict = field(default_factory=dict)
    obs: object = None

    def job(self, name: str) -> JobResult:
        for jr in self.jobs:
            if jr.spec.name == name:
                return jr
        raise SchedError(f"no job named {name!r} in this run")

    def document(self) -> dict:
        return {
            "policy": self.policy,
            "makespan_seconds": self.makespan,
            "cross_job_l2_evictions": self.cross_job_evictions,
            "pair_evictions": {
                f"{evictor}->{victim}": lines
                for (evictor, victim), lines in sorted(self.pair_evictions.items())
            },
            "ctx_switch_seconds": self.ctx_switch_seconds,
            "jobs": [jr.document() for jr in self.jobs],
        }


class _TrackedSpace(AddressSpace):
    """AddressSpace that reports every allocation to the ledger, so
    cache lines have job owners."""

    def __init__(self, machine, pid, name, ledger, job_id) -> None:
        super().__init__(machine, pid, name=name)
        self._ledger = ledger
        self._job_id = job_id

    def alloc(self, nbytes, name="", align=None):
        kwargs = {} if align is None else {"align": align}
        buf = super().alloc(nbytes, name=name, **kwargs)
        self._ledger.register(self._job_id, buf.phys, buf.nbytes)
        return buf


class JobWorld(MpiWorld):
    """An MpiWorld admitted by a scheduler into a *shared* machine.

    Differences from a standalone world: allocations (including the shm
    copy-ring cells) are registered with the interference ledger, and —
    when the LMT config is ``tenancy_aware`` — the DMAmin denominator
    counts every co-located rank of *every* active job sharing the
    receive cache, not just this job's own ranks.
    """

    def __init__(self, scheduler: "Scheduler", job_id: int, spec: JobSpec,
                 bindings: Sequence[int], policy: LmtPolicy) -> None:
        # Set before super().__init__: the base constructor calls
        # _make_space, which needs them.
        self._scheduler = scheduler
        self._job_id = job_id
        self.spec = spec
        super().__init__(
            scheduler.engine, scheduler.machine, spec.nprocs, bindings, policy
        )

    def _make_space(self, rank: int) -> AddressSpace:
        return _TrackedSpace(
            self.machine,
            pid=rank,
            name=f"job{self._job_id}.rank{rank}",
            ledger=self._scheduler.ledger,
            job_id=self._job_id,
        )

    def copy_ring(self, src_rank: int, dst_rank: int):
        key = (src_rank, dst_rank)
        fresh = key not in self._rings
        ring = super().copy_ring(src_rank, dst_rank)
        if fresh:
            # The ring's hot lines churn through the shared cache on the
            # job's behalf; charge their evictions to this job.
            for cell in ring.cells:
                self._scheduler.ledger.register(
                    self._job_id, cell.phys, cell.nbytes
                )
        return ring

    def cache_sharers(self, rank: int) -> int:
        if not self.policy.config.tenancy_aware:
            return super().cache_sharers(rank)
        return self._scheduler.sharers_on_cache(self.core_of(rank))


class _JobState:
    """Scheduler-internal bookkeeping for one submitted job."""

    __slots__ = ("job_id", "spec", "placed", "result", "supervisor")

    def __init__(self, job_id: int, spec: JobSpec, placed) -> None:
        self.job_id = job_id
        self.spec = spec
        self.placed = placed  # Event -> bindings
        self.result: Optional[JobResult] = None
        self.supervisor = None


class Scheduler:
    """Admit a mix of MPI jobs into one shared simulated machine."""

    def __init__(
        self,
        topo: TopologySpec,
        policy: str = "fifo",
        quantum: float = 200e-6,
        ctx_switch: float = 5e-6,
        obs=None,
        max_events: Optional[int] = None,
        max_sim_time: Optional[float] = None,
        isolated_baselines: bool = True,
        tenancy_aware: bool = True,
    ) -> None:
        if policy not in SCHED_POLICIES:
            raise SchedError(
                f"unknown scheduling policy {policy!r}; valid policies: "
                + ", ".join(repr(p) for p in SCHED_POLICIES)
            )
        if quantum <= 0 or ctx_switch < 0:
            raise SchedError(
                f"need quantum > 0 and ctx_switch >= 0, "
                f"got {quantum!r} / {ctx_switch!r}"
            )
        self.topo = topo
        self.policy_name = policy
        self.quantum = quantum
        self.ctx_switch = ctx_switch
        self.isolated_baselines = isolated_baselines
        self.tenancy_aware = tenancy_aware
        self.engine = Engine(
            obs=obs, max_events=max_events, max_sim_time=max_sim_time
        )
        self.machine = Machine(self.engine, topo)
        self.ledger = InterferenceLedger(self.machine)
        self.machine.coherence.interference = self.ledger
        #: core -> number of resident jobs (0 = idle).
        self._core_load = [0] * topo.ncores
        #: job_id -> bindings of currently *running* jobs.
        self._active: dict[int, list[int]] = {}
        self._queue: list[_JobState] = []
        self._states: list[_JobState] = []
        self._cs_daemons: set[int] = set()
        self.ctx_switch_seconds = 0.0
        self._ran = False

    # ------------------------------------------------------- placement
    def _preference(self, spec: JobSpec) -> list[int]:
        """Core visit order for a job's placement preference."""
        if spec.placement == "spread":
            return bindings_for(self.topo, self.topo.ncores, "spread")
        return list(range(self.topo.ncores))

    def _idle_fit(self, spec: JobSpec) -> Optional[list[int]]:
        """First ``nprocs`` idle cores in preference order, or None."""
        idle = [c for c in self._preference(spec) if self._core_load[c] == 0]
        if len(idle) < spec.nprocs:
            return None
        return idle[: spec.nprocs]

    def _shared_fit(self, spec: JobSpec) -> list[int]:
        """Least-loaded cores in preference order (gang: always fits)."""
        order = self._preference(spec)
        ranked = sorted(range(len(order)), key=lambda i: (self._core_load[order[i]], i))
        return [order[i] for i in ranked[: spec.nprocs]]

    def sharers_on_cache(self, core: int) -> int:
        """Active ranks (any job) on cores sharing ``core``'s L2 — the
        machine-wide DMAmin denominator of a tenancy-aware policy."""
        count = 0
        for bindings in self._active.values():
            count += sum(
                1 for c in bindings if self.topo.shares_cache(core, c)
            )
        return max(1, count)

    # ------------------------------------------------------ scheduling
    def _try_schedule(self) -> None:
        """Start every queued job the policy admits right now."""
        if self.policy_name == "gang":
            while self._queue:
                st = self._queue.pop(0)
                self._start(st, self._shared_fit(st.spec))
            return
        admitted = True
        while admitted:
            admitted = False
            for i, st in enumerate(self._queue):
                bindings = self._idle_fit(st.spec)
                if bindings is not None:
                    self._queue.pop(i)
                    self._start(st, bindings)
                    admitted = True
                    break
                if self.policy_name == "fifo":
                    return  # head blocks everything behind it

    def _start(self, st: _JobState, bindings: list[int]) -> None:
        for core in bindings:
            self._core_load[core] += 1
        self._active[st.job_id] = list(bindings)
        for core in bindings:
            if self._core_load[core] > 1 and core not in self._cs_daemons:
                self._cs_daemons.add(core)
                self.engine.process(
                    self._cs_daemon(core), name=f"ctxswitch.core{core}",
                    daemon=True,
                )
        st.placed.succeed(list(bindings))

    def _finish(self, st: _JobState) -> None:
        for core in self._active.pop(st.job_id):
            self._core_load[core] -= 1
        self.ledger.retire_job(st.job_id)
        self.engine.call_soon(self._try_schedule)

    # ---------------------------------------------------- time sharing
    def _cs_daemon(self, core: int):
        """Charge context-switch overhead while ``core`` is shared.

        Exits as soon as the core drops to a single resident job, so a
        finished gang leaves nothing ticking — the event heap drains
        and :meth:`Engine.run` returns normally.
        """
        while self._core_load[core] > 1:
            yield self.quantum
            residents = self._core_load[core]
            if residents > 1 and self.ctx_switch > 0:
                cost = self.ctx_switch * residents
                self.ctx_switch_seconds += cost
                yield self.machine.cores[core].busy(cost)
        self._cs_daemons.discard(core)

    # ------------------------------------------------------ job driver
    def _supervise(self, st: _JobState):
        spec = st.spec
        if spec.arrival > 0:
            yield spec.arrival
        arrival = self.engine.now
        self._queue.append(st)
        # Deterministic service order: priority first, then arrival,
        # then submission order (job_id).
        self._queue.sort(key=lambda s: (-s.spec.priority, s.spec.arrival, s.job_id))
        self._try_schedule()
        bindings = yield st.placed
        started = self.engine.now
        metrics = self.engine.obs.metrics
        metrics.histogram("sched.wait_seconds").observe(started - arrival)
        span = None
        if self.engine.obs.enabled:
            span = self.engine.obs.begin(
                f"job:{spec.name}",
                kind="job",
                track=f"job{st.job_id}",
                workload=spec.workload,
                mode=spec.mode,
                nprocs=spec.nprocs,
            )
        self.ledger.add_job(st.job_id)
        policy = LmtPolicy(
            self.topo,
            LmtConfig(mode=spec.mode, tenancy_aware=self.tenancy_aware),
        )
        world = JobWorld(self, st.job_id, spec, bindings, policy)
        main = workload_main(spec)
        procs = [
            self.engine.process(
                main(RankContext(world, r)), name=f"{spec.name}.rank{r}"
            )
            for r in range(spec.nprocs)
        ]
        for proc in procs:
            yield proc
        self.engine.obs.end(span)
        st.result = JobResult(
            job_id=st.job_id,
            spec=spec,
            bindings=list(bindings),
            arrival=arrival,
            started=started,
            finished=self.engine.now,
            results=[p.result for p in procs],
        )
        self._finish(st)

    # ------------------------------------------------------------- run
    def run(self, jobs: Sequence[JobSpec]) -> SchedResult:
        """Run a mix of jobs to completion on the shared machine."""
        if self._ran:
            raise SchedError("a Scheduler instance runs exactly once")
        self._ran = True
        jobs = list(jobs)
        if not jobs:
            raise SchedError("no jobs to schedule")
        names = set()
        for spec in jobs:
            if spec.nprocs > self.topo.ncores:
                raise SchedError(
                    f"job {spec.name!r} needs {spec.nprocs} cores but the "
                    f"machine has {self.topo.ncores}"
                )
            if spec.name in names:
                raise SchedError(f"duplicate job name {spec.name!r}")
            names.add(spec.name)
        order = sorted(
            range(len(jobs)), key=lambda i: (jobs[i].arrival, -jobs[i].priority, i)
        )
        for job_id, i in enumerate(order):
            st = _JobState(job_id, jobs[i], self.engine.event(f"job{job_id}.placed"))
            self._states.append(st)
            st.supervisor = self.engine.process(
                self._supervise(st), name=f"sched.{st.spec.name}"
            )
        try:
            self.engine.run()
        except DeadlockError as exc:
            waiting = [s.spec.name for s in self._queue]
            if waiting:
                raise SchedError(
                    "scheduler drained with jobs still queued: "
                    + ", ".join(waiting)
                ) from exc
            raise
        makespan = self.engine.now
        results = [st.result for st in self._states]
        if self.isolated_baselines:
            for st in self._states:
                st.result.isolated_seconds = self._isolated_runtime(st.spec)
        for st in self._states:
            st.result.interference = self.ledger.job_summary(st.job_id)
        self._publish_metrics(results, makespan)
        self.engine.obs.finalize()
        return SchedResult(
            policy=self.policy_name,
            jobs=results,
            makespan=makespan,
            cross_job_evictions=sum(self.ledger.evicted_by_others.values()),
            pair_evictions=dict(self.ledger.pair_evictions),
            ctx_switch_seconds=self.ctx_switch_seconds,
            metrics=self.engine.obs.metrics.snapshot(),
            obs=self.engine.obs,
        )

    def _isolated_runtime(self, spec: JobSpec) -> float:
        """The same job, alone, on an identical empty machine."""
        from repro.mpi.world import run_mpi

        idle = self._preference(spec)[: spec.nprocs]
        result = run_mpi(
            self.topo,
            nprocs=spec.nprocs,
            main=workload_main(spec),
            bindings=idle,
            config=LmtConfig(mode=spec.mode, tenancy_aware=self.tenancy_aware),
        )
        return result.elapsed

    def _publish_metrics(self, results: list[JobResult], makespan: float) -> None:
        metrics = self.engine.obs.metrics
        metrics.counter("sched.jobs_completed").set(len(results))
        metrics.gauge("sched.makespan_seconds").set(makespan)
        metrics.gauge("sched.ctx_switch_seconds").set(self.ctx_switch_seconds)
        metrics.counter("sched.cross_job_l2_evictions").set(
            sum(self.ledger.evicted_by_others.values())
        )
        for jr in results:
            prefix = f"sched.job.{jr.spec.name}"
            metrics.gauge(f"{prefix}.wait_seconds").set(jr.wait_seconds)
            metrics.gauge(f"{prefix}.duration_seconds").set(jr.duration)
            if jr.slowdown is not None:
                metrics.gauge(f"{prefix}.slowdown").set(jr.slowdown)
            metrics.counter(f"{prefix}.l2_lines_evicted_by_others").set(
                jr.interference.get("l2_lines_evicted_by_others", 0)
            )


def run_jobs(
    topo: TopologySpec, jobs: Sequence[JobSpec], policy: str = "fifo", **kwargs
) -> SchedResult:
    """One-shot convenience: schedule ``jobs`` on a fresh machine."""
    return Scheduler(topo, policy=policy, **kwargs).run(jobs)
