"""Job descriptions and workload generators for the scheduler.

A :class:`JobSpec` is everything the scheduler needs to admit one MPI
job into the shared machine: what it runs (workload + message/working
set size + LMT mode), how wide it is (nprocs), where it wants to sit
(placement policy, built on :func:`repro.mpi.affinity.bindings_for`'s
preference orders), and when it shows up (arrival time, priority).

Workloads are deliberately the paper's cast:

``pingpong``
    Neighbour pairs (rank ``2k`` ⇄ ``2k+1``) bounce a ``size``-byte
    message ``reps`` times — the Fig. 4/5 kernel, and the cache
    *aggressor* when run in ``default`` (shm double-buffering) mode.
``alltoall``
    One ``MPI_Alltoall`` of ``size`` total bytes per rank per rep —
    the Sec. 4.4 collective whose concurrency floods cache and bus.
``stream``
    A pure compute phase scanning a ``size``-byte working set each rep
    (no communication) — the cache *victim*: its runtime is a direct
    function of how much of its working set survives in the shared L2.
``is-kernel``
    The NAS IS skeleton: a working-set scan followed by an alltoall
    each rep — compute whose locality communication can destroy.
``nhood``
    A node-aware sparse neighborhood exchange (:mod:`repro.nhood`) on
    a *virtual* two-node partition of the job's ranks: the aggregation
    leaders gather/scatter their members' payloads through the job's
    LMT mode on the shared machine, so a ``default`` (shm copy-ring)
    leader pollutes the shared L2 exactly like a pingpong aggressor —
    and a KNEM/I/OAT leader does not.  The leader staging buffers are
    ordinary job allocations, so every line they evict is attributed
    by the :class:`~repro.sched.interference.InterferenceLedger`.

:class:`JobMix` builds seeded, reproducible mixes of such jobs; the
named mixes (:data:`JOB_MIXES`) are the ``job_mix`` campaign axis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.policy import MODES
from repro.errors import SchedError
from repro.units import KiB, MiB

__all__ = ["JobSpec", "JobMix", "WORKLOADS", "JOB_MIXES", "workload_main", "mix_jobs"]

WORKLOADS = ("pingpong", "alltoall", "stream", "is-kernel", "nhood")

#: Named job mixes understood by :func:`mix_jobs` (the campaign axis).
JOB_MIXES = ("pair", "trio", "random", "nhood")


@dataclass(frozen=True)
class JobSpec:
    """One job submitted to the scheduler."""

    name: str
    workload: str = "pingpong"
    nprocs: int = 2
    #: Message size (comm workloads) / working-set size (stream).
    size: int = 1 * MiB
    #: Iterations of the workload's inner kernel.
    reps: int = 2
    #: LMT mode of this job's policy (see :data:`repro.core.policy.MODES`).
    mode: str = "default"
    #: ``packed`` prefers cache-sharing cores, ``spread`` avoids them.
    placement: str = "packed"
    #: Simulated submission time.
    arrival: float = 0.0
    #: Higher runs first among simultaneously-queued jobs.
    priority: int = 0

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise SchedError(
                f"unknown workload {self.workload!r}; pick one of {WORKLOADS}"
            )
        if self.mode not in MODES:
            raise SchedError(
                f"unknown LMT mode {self.mode!r}; pick one of {MODES}"
            )
        if self.placement not in ("packed", "spread"):
            raise SchedError(
                f"placement must be 'packed' or 'spread': {self.placement!r}"
            )
        if self.nprocs < 1:
            raise SchedError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.workload in ("pingpong",) and self.nprocs % 2:
            raise SchedError(f"pingpong needs an even nprocs, got {self.nprocs}")
        if self.workload == "nhood" and self.nprocs < 4:
            raise SchedError(
                f"nhood needs nprocs >= 4 (two virtual nodes with members), "
                f"got {self.nprocs}"
            )
        if self.size < 1:
            raise SchedError(f"size must be positive, got {self.size}")
        if self.reps < 1:
            raise SchedError(f"reps must be >= 1, got {self.reps}")
        if self.arrival < 0:
            raise SchedError(f"arrival must be >= 0, got {self.arrival}")


# ------------------------------------------------------------- workloads
def _pingpong_main(spec: JobSpec):
    def main(ctx):
        comm = ctx.comm
        buf = ctx.alloc(spec.size, name="pp")
        peer = ctx.rank ^ 1
        for rep in range(spec.reps):
            if ctx.rank % 2 == 0:
                yield comm.Send(buf, dest=peer, tag=rep)
                status = yield comm.Recv(buf, source=peer, tag=rep)
            else:
                status = yield comm.Recv(buf, source=peer, tag=rep)
                yield comm.Send(buf, dest=peer, tag=rep)
        return getattr(status, "path", None)

    return main


def _alltoall_main(spec: JobSpec):
    def main(ctx):
        comm = ctx.comm
        p = comm.size
        block = max(1, spec.size // max(p, 1))
        send = ctx.alloc(block * p, name="a2a.s")
        recv = ctx.alloc(block * p, name="a2a.r")
        for _ in range(spec.reps):
            yield comm.Alltoall(send, recv)
        return block * p

    return main


def _stream_main(spec: JobSpec):
    def main(ctx):
        ws = ctx.alloc(spec.size, name="ws")
        for i in range(spec.reps):
            yield ctx.touch(ws, write=bool(i % 2))
        return ctx.now

    return main


def _is_kernel_main(spec: JobSpec):
    def main(ctx):
        comm = ctx.comm
        p = comm.size
        ws = ctx.alloc(spec.size, name="is.ws")
        block = max(1, spec.size // (4 * max(p, 1)))
        send = ctx.alloc(block * p, name="is.s")
        recv = ctx.alloc(block * p, name="is.r")
        for _ in range(spec.reps):
            yield ctx.touch(ws, write=False)
            if p > 1:
                yield comm.Alltoall(send, recv)
        return ctx.now

    return main


def _nhood_main(spec: JobSpec):
    def main(ctx):
        from repro.nhood import irregular, neighbor_alltoallv

        comm = ctx.comm
        p = comm.size
        # spec.size is the job's total exchange volume per rep; spread
        # it over the graph's directed edges.
        degree = min(3, p - 1)
        halo = max(4 * KiB, spec.size // (p * degree))
        cg = irregular(p, halo, seed=0, degree=degree)
        g = cg.graph_of(ctx.rank)
        send = ctx.alloc(max(g.send_bytes, 1), name="nh.s")
        recv = ctx.alloc(max(g.recv_bytes, 1), name="nh.r")
        # Virtual two-node partition: aggregation leaders stage their
        # members' payloads through this job's LMT mode on the shared
        # machine (the interference experiment's whole point).
        half = (p + 1) // 2
        for _ in range(spec.reps):
            yield neighbor_alltoallv(
                comm, cg, send, recv, strategy="node-aware",
                node_of=lambda l: 0 if l < half else 1,
            )
        return ctx.now

    return main


_WORKLOAD_MAINS: dict[str, Callable[[JobSpec], Callable]] = {
    "pingpong": _pingpong_main,
    "alltoall": _alltoall_main,
    "stream": _stream_main,
    "is-kernel": _is_kernel_main,
    "nhood": _nhood_main,
}


def workload_main(spec: JobSpec) -> Callable:
    """The per-rank ``main(ctx)`` generator function for a job."""
    return _WORKLOAD_MAINS[spec.workload](spec)


# ------------------------------------------------------------------ mixes
@dataclass(frozen=True)
class JobMix:
    """A seeded, reproducible mix of jobs.

    Identical field values (seed included) always expand to the same
    job list — the determinism the campaign cache and the
    byte-identical ``BENCH_sched.json`` test rely on.
    """

    seed: int = 0
    njobs: int = 4
    workloads: tuple = ("pingpong", "stream")
    modes: tuple = ("default", "knem-ioat-async")
    sizes: tuple = (1 * MiB, 2 * MiB)
    nprocs: tuple = (2,)
    reps: int = 2
    #: Mean spacing between arrivals (0 = everything at t=0).
    arrival_spacing: float = 0.0
    placements: tuple = ("packed",)

    def jobs(self) -> list[JobSpec]:
        rng = random.Random(self.seed)
        out: list[JobSpec] = []
        clock = 0.0
        for i in range(self.njobs):
            workload = rng.choice(self.workloads)
            spec = JobSpec(
                name=f"mix{self.seed}.job{i}",
                workload=workload,
                nprocs=1 if workload == "stream" else rng.choice(self.nprocs),
                size=rng.choice(self.sizes),
                reps=self.reps,
                mode="default" if workload == "stream" else rng.choice(self.modes),
                placement=rng.choice(self.placements),
                arrival=clock,
                priority=0,
            )
            out.append(spec)
            if self.arrival_spacing > 0:
                clock += rng.uniform(0.5, 1.5) * self.arrival_spacing
        return out


def mix_jobs(
    mix: str,
    size: int = 1 * MiB,
    mode: str = "default",
    seed: int = 0,
    reps: int = 2,
) -> list[JobSpec]:
    """Expand a named mix (the campaign ``job_mix`` axis).

    ``pair``
        One ``stream`` victim plus one ``mode``-driven pingpong
        aggressor — the minimal interference experiment.
    ``trio``
        Two victims flanking the aggressor (a fuller machine).
    ``random``
        A seeded :class:`JobMix` of four jobs whose aggressors use
        ``mode``.
    ``nhood``
        One ``stream`` victim plus a four-rank node-aware neighborhood
        job in ``mode`` — the aggregation-leader variant of ``pair``:
        the leader's gather/scatter staging is the cache aggressor.
    """
    if mix == "pair":
        return [
            JobSpec(name="victim", workload="stream", nprocs=1,
                    size=2 * size, reps=max(3, reps + 1)),
            JobSpec(name="aggressor", workload="pingpong", nprocs=2,
                    size=size, reps=reps, mode=mode),
        ]
    if mix == "trio":
        return [
            JobSpec(name="victim0", workload="stream", nprocs=1,
                    size=2 * size, reps=max(3, reps + 1)),
            JobSpec(name="aggressor", workload="pingpong", nprocs=2,
                    size=size, reps=reps, mode=mode),
            JobSpec(name="victim1", workload="is-kernel", nprocs=2,
                    size=size, reps=reps),
        ]
    if mix == "nhood":
        return [
            JobSpec(name="victim", workload="stream", nprocs=1,
                    size=2 * size, reps=max(3, reps + 1)),
            JobSpec(name="aggressor", workload="nhood", nprocs=4,
                    size=size, reps=reps, mode=mode),
        ]
    if mix == "random":
        base = JobMix(seed=seed, sizes=(size, 2 * size),
                      modes=(mode, "default"), reps=reps)
        return [replace(j, mode=mode) if j.workload == "pingpong" else j
                for j in base.jobs()]
    raise SchedError(f"unknown job mix {mix!r}; pick one of {JOB_MIXES}")


# keep dataclasses import usage explicit for linters
_ = field
