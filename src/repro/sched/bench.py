"""The ``repro-bench sched`` benchmark: the multi-tenancy demo.

Two experiments, both on the shared-L2 ``nehalem8`` preset:

1. **Interference** — the ``pair`` mix (a stream victim co-located with
   a pingpong aggressor) once with the aggressor in ``default`` (shm
   double-buffering) mode and once in ``knem-ioat-async`` (DMA engine)
   mode.  The document records the victim's slowdown against its
   isolated baseline and the cross-job L2 evictions the ledger
   attributed to the aggressor.  The headline claim: the shm job evicts
   the neighbour's working set wholesale and multiplies its runtime,
   while the *same traffic* offloaded to I/OAT leaves the neighbour's
   cache intact.

2. **Policies** — a queued three-job mix run under each scheduling
   policy, recording makespan and per-job wait times (fifo queues,
   backfill reorders, gang time-shares and pays context switches).

Everything is deterministic: no noise model, fixed seeds, fixed sizes —
so the emitted ``BENCH_sched.json`` is byte-reproducible and sits in CI
as a regression anchor.
"""

from __future__ import annotations

from repro.bench.reporting import topology_block
from repro.hw.presets import nehalem8
from repro.sched.job import JobSpec, mix_jobs
from repro.sched.scheduler import SCHED_POLICIES, Scheduler
from repro.units import MiB

__all__ = ["run_sched_bench", "format_sched_doc"]

#: Message / working-set scale of the interference experiment.  4 MiB
#: messages mean the victim's 8 MiB working set and the aggressor's
#: copies together overflow nehalem8's shared 8 MiB L2 — below that,
#: everything fits and there is nothing to evict.
INTERFERENCE_SIZE = 4 * MiB

#: The two aggressor modes whose gap is the paper's Table 2 argument.
SHM_MODE = "default"
DMA_MODE = "knem-ioat-async"


def _interference_case(mode: str, max_events: int, size: int) -> dict:
    sched = Scheduler(nehalem8(), policy="fifo", max_events=max_events)
    result = sched.run(mix_jobs("pair", size=size, mode=mode))
    victim = result.job("victim")
    aggressor = result.job("aggressor")
    return {
        "mode": mode,
        "victim_slowdown": victim.slowdown,
        "victim_isolated_seconds": victim.isolated_seconds,
        "victim_duration_seconds": victim.duration,
        "victim_l2_lines_evicted_by_others": victim.interference[
            "l2_lines_evicted_by_others"
        ],
        "aggressor_l2_lines_evicted_from_others": aggressor.interference[
            "l2_lines_evicted_from_others"
        ],
        "aggressor_slowdown": aggressor.slowdown,
        "makespan_seconds": result.makespan,
        "bindings": {
            jr.spec.name: list(jr.bindings) for jr in result.jobs
        },
    }


def _policy_case(policy: str, jobs: list[JobSpec], max_events: int) -> dict:
    sched = Scheduler(
        nehalem8(), policy=policy, max_events=max_events,
        isolated_baselines=False,
    )
    result = sched.run(jobs)
    return {
        "policy": policy,
        "makespan_seconds": result.makespan,
        "ctx_switch_seconds": result.ctx_switch_seconds,
        "cross_job_l2_evictions": result.cross_job_evictions,
        "waits": {
            jr.spec.name: jr.wait_seconds for jr in result.jobs
        },
    }


def run_sched_bench(max_events: int = 5_000_000,
                    size: int = INTERFERENCE_SIZE) -> dict:
    """Run both experiments; returns the JSON-stable document."""
    shm = _interference_case(SHM_MODE, max_events, size)
    dma = _interference_case(DMA_MODE, max_events, size)

    queued = [
        JobSpec(name=f"q{i}", workload="pingpong", nprocs=4, size=1 * MiB,
                reps=2, mode="knem")
        for i in range(3)
    ]
    policies = [_policy_case(p, queued, max_events) for p in SCHED_POLICIES]

    demo_topo = nehalem8()
    demo_bindings = (
        shm["bindings"]["victim"] + shm["bindings"]["aggressor"]
    )
    return {
        "bench": "sched",
        "machine": demo_topo.name,
        "topology": topology_block(demo_topo, bindings=demo_bindings),
        "interference": {
            "size": size,
            "shm": shm,
            "dma": dma,
            "eviction_gap": (
                shm["victim_l2_lines_evicted_by_others"]
                - dma["victim_l2_lines_evicted_by_others"]
            ),
            "slowdown_gap": shm["victim_slowdown"] - dma["victim_slowdown"],
        },
        "policies": policies,
    }


def format_sched_doc(doc: dict) -> str:
    """Human-readable rendering of a sched bench document."""
    from repro.bench.reporting import format_table

    inter = doc["interference"]
    lines = [
        format_table(
            ["aggressor mode", "victim slowdown", "victim lines evicted",
             "makespan (us)"],
            [
                [
                    case["mode"],
                    case["victim_slowdown"],
                    case["victim_l2_lines_evicted_by_others"],
                    case["makespan_seconds"] * 1e6,
                ]
                for case in (inter["shm"], inter["dma"])
            ],
            title=f"co-located interference on {doc['machine']} "
            f"({inter['size']} B messages)",
        ),
        "",
        format_table(
            ["policy", "makespan (us)", "ctx switch (us)", "max wait (us)"],
            [
                [
                    case["policy"],
                    case["makespan_seconds"] * 1e6,
                    case["ctx_switch_seconds"] * 1e6,
                    max(case["waits"].values()) * 1e6,
                ]
                for case in doc["policies"]
            ],
            title="scheduling policies over a queued 3-job mix",
        ),
    ]
    return "\n".join(lines)
