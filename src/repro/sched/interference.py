"""Cache-interference accounting between co-located jobs.

The paper's Table 2 argument — copy-based LMTs pollute shared caches,
I/OAT DMA does not — only becomes *visible to a neighbour* when two
workloads share one :class:`~repro.hw.cache.ExtentLRUCache`.  The
:class:`InterferenceLedger` makes that visible: it knows which physical
line ranges belong to which job (every job allocation and shm copy-ring
cell is registered at creation), installs itself as the
``CoherenceDomain.interference`` probe, and brackets every CPU stream
with a residency snapshot of the *other* jobs' lines on the accessed
die.  Lines of job B that were resident before job A's stream and gone
after it are capacity evictions A inflicted on B — the ``sched.*``
cross-job eviction metric.

Attribution is by *address ownership*, not by core: the accessed range
belongs to exactly one job (physical ranges are disjoint by
construction), so the evictor is the owner of the accessed range and
the victims are the owners of whatever vanished.  DMA traffic needs no
probe at all — ``dma_read`` only downgrades and ``dma_write`` only
invalidates the destination range, which the accessor owns — which is
precisely why an I/OAT job shows up with zero cross-job evictions.

The probe costs one attribute check per stream when absent and a
per-victim-range ``resident_lines`` scan when armed; it never touches
LRU state (``resident_lines`` is a pure interval sum).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

__all__ = ["InterferenceLedger"]


class InterferenceLedger:
    """Owns the job ⇄ physical-line map and the eviction tallies."""

    def __init__(self, machine) -> None:
        self.machine = machine
        #: job id -> list of (start_line, end_line) owned ranges.
        self._ranges: dict[int, list[tuple[int, int]]] = {}
        #: Sorted range index for owner lookups: (start, end, job).
        self._index: list[tuple[int, int, int]] = []
        self._index_starts: list[int] = []
        #: job -> lines of this job evicted by other jobs' accesses.
        self.evicted_by_others: dict[int, int] = {}
        #: job -> lines of *other* jobs this job's accesses evicted.
        self.evictions_caused: dict[int, int] = {}
        #: (evictor job, victim job) -> lines.
        self.pair_evictions: dict[tuple[int, int], int] = {}
        #: Jobs currently running (finished jobs stop being victims in
        #: the probe loop but keep their tallies).
        self._active: set[int] = set()

    # ------------------------------------------------------- registry
    def add_job(self, job_id: int) -> None:
        self._ranges.setdefault(job_id, [])
        self._active.add(job_id)
        self.evicted_by_others.setdefault(job_id, 0)
        self.evictions_caused.setdefault(job_id, 0)

    def retire_job(self, job_id: int) -> None:
        self._active.discard(job_id)

    def register(self, job_id: int, phys: int, nbytes: int) -> None:
        """Record that ``[phys, phys + nbytes)`` belongs to ``job_id``."""
        if nbytes <= 0:
            return
        lo, hi = self.machine.line_span(phys, nbytes)
        self._ranges.setdefault(job_id, []).append((lo, hi))
        self._index.append((lo, hi, job_id))
        self._index.sort()
        self._index_starts = [r[0] for r in self._index]

    def owner_of(self, line: int) -> Optional[int]:
        """The job owning a physical line, or None (kernel buffers,
        untracked single-job runs)."""
        i = bisect_right(self._index_starts, line) - 1
        if i >= 0:
            lo, hi, job = self._index[i]
            if lo <= line < hi:
                return job
        return None

    # ----------------------------------------------------- occupancy
    def occupancy(self, job_id: int) -> int:
        """Lines of ``job_id`` currently resident across all caches."""
        total = 0
        for cache in self.machine.caches:
            for lo, hi in self._ranges.get(job_id, ()):
                total += cache.resident_lines(lo, hi)
        return total

    def occupancy_on_die(self, job_id: int, die: int) -> int:
        cache = self.machine.caches[die]
        return sum(
            cache.resident_lines(lo, hi)
            for lo, hi in self._ranges.get(job_id, ())
        )

    # ------------------------------------------------ coherence probe
    def pre_access(self, die: int, start: int, end: int):
        """Residency of every *other* active job on the accessed die,
        taken just before the stream mutates the cache."""
        accessor = self.owner_of(start)
        victims = [j for j in self._active if j != accessor]
        if not victims:
            return None
        cache = self.machine.caches[die]
        resident = []
        for job in victims:
            lines = sum(
                cache.resident_lines(lo, hi)
                for lo, hi in self._ranges.get(job, ())
            )
            if lines:
                resident.append((job, lines))
        if not resident:
            return None
        return (accessor, resident)

    def post_access(self, die: int, start: int, end: int, token) -> None:
        if token is None:
            return
        accessor, resident = token
        cache = self.machine.caches[die]
        for job, before in resident:
            after = sum(
                cache.resident_lines(lo, hi)
                for lo, hi in self._ranges.get(job, ())
            )
            lost = before - after
            if lost <= 0:
                continue
            self.evicted_by_others[job] = (
                self.evicted_by_others.get(job, 0) + lost
            )
            if accessor is not None:
                self.evictions_caused[accessor] = (
                    self.evictions_caused.get(accessor, 0) + lost
                )
            key = (-1 if accessor is None else accessor, job)
            self.pair_evictions[key] = self.pair_evictions.get(key, 0) + lost

    # ------------------------------------------------------- summary
    def job_summary(self, job_id: int) -> dict:
        """The interference breakdown embedded in a ``JobResult``."""
        return {
            "l2_lines_evicted_by_others": self.evicted_by_others.get(job_id, 0),
            "l2_lines_evicted_from_others": self.evictions_caused.get(job_id, 0),
            "victims": {
                str(victim): lines
                for (evictor, victim), lines in sorted(self.pair_evictions.items())
                if evictor == job_id
            },
        }
