"""repro.sched — multi-tenant job scheduling on the shared machine.

Admits a seeded mix of MPI jobs into *one* simulated machine so that
co-located jobs contend through the same cache hierarchy, with an
interference ledger attributing every cross-job L2 eviction to the job
whose traffic caused it.  See :mod:`repro.sched.scheduler` for the
policies and :mod:`repro.sched.job` for the workload cast.
"""

from repro.sched.interference import InterferenceLedger
from repro.sched.job import (
    JOB_MIXES,
    WORKLOADS,
    JobMix,
    JobSpec,
    mix_jobs,
    workload_main,
)
from repro.sched.scheduler import (
    SCHED_POLICIES,
    JobResult,
    JobWorld,
    SchedResult,
    Scheduler,
    run_jobs,
)

__all__ = [
    "InterferenceLedger",
    "JobSpec",
    "JobMix",
    "JobResult",
    "JobWorld",
    "SchedResult",
    "Scheduler",
    "run_jobs",
    "mix_jobs",
    "workload_main",
    "WORKLOADS",
    "JOB_MIXES",
    "SCHED_POLICIES",
]
