"""Exact fully-associative LRU cache, simulated at extent granularity.

The workloads in this reproduction touch memory in *bulk sequential
sweeps* (message copies, working-set scans).  Simulating every line of a
4 MiB copy individually would dominate runtime, so this cache stores its
contents as an LRU-ordered sequence of **extents** — contiguous runs of
cache lines — and processes a whole sweep with interval arithmetic.

The semantics are exactly those of a per-line fully-associative LRU
cache where each bulk access touches its lines in ascending address
order (a property test in ``tests/hw/test_cache_reference.py`` checks
bit-for-bit equality against a naive per-line model, including the
subtle case of sweeps that evict their own earlier lines).

Within one extent, recency ascends with address (the convention induced
by ascending-order sweeps): the highest-addressed line is the most
recently used of the extent.  Stack-adjacent extents that continue each
other in address are merged — the merged extent has identical per-line
depths, so coalescing is exactness-preserving and keeps the extent
count near the number of *distinct live regions*, not chunks.

Storage is three parallel NumPy arrays in MRU-to-LRU order
(``_starts``, ``_ends``, ``_dirty``); every operation is a bulk array
rebuild, so cost scales with the number of extents at NumPy constants.

Addresses here are **line numbers**, not bytes; callers divide by the
line size.  ``dirty`` tracking enables write-back accounting (evicted
dirty lines become bus traffic in :mod:`repro.hw.coherence`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import HardwareError

__all__ = ["AccessResult", "ExtentLRUCache", "Extent"]

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_B = np.empty(0, dtype=bool)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one bulk access."""

    hits: int
    misses: int
    writebacks: int  # dirty lines evicted (to be charged as bus traffic)

    @property
    def lines(self) -> int:
        return self.hits + self.misses


@dataclass(frozen=True)
class Extent:
    """A contiguous run of resident lines (read-only view for tests)."""

    start: int
    end: int
    dirty: bool

    def __len__(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:
        flag = "D" if self.dirty else "C"
        return f"Extent[{self.start},{self.end}){flag}"


class ExtentLRUCache:
    """Fully-associative LRU cache over line extents.

    Parameters
    ----------
    capacity_lines:
        Cache size in lines (e.g. 4 MiB / 64 B = 65536).
    name:
        For diagnostics (e.g. ``"L2.die0"``).
    prof:
        Optional :class:`~repro.obs.prof.WallProfiler`; when armed,
        every bulk op (``peek``/``access``/``invalidate``/
        ``downgrade``) records its wall self time under ``cache.*``.
        ``None`` (the default) costs one attribute check per op.
    """

    def __init__(self, capacity_lines: int, name: str = "", prof=None) -> None:
        if capacity_lines <= 0:
            raise HardwareError(f"cache capacity must be positive: {capacity_lines}")
        self.capacity = capacity_lines
        self.name = name
        self.prof = prof
        # MRU first; pairwise disjoint in address.
        self._starts = _EMPTY_I
        self._ends = _EMPTY_I
        self._dirty = _EMPTY_B
        self._lines = 0

    # ------------------------------------------------------------- util
    @property
    def used_lines(self) -> int:
        return self._lines

    def __contains__(self, line: int) -> bool:
        return bool(np.any((self._starts <= line) & (line < self._ends)))

    def iter_extents(self) -> Iterator[Extent]:
        """MRU-to-LRU iteration (for tests and debugging)."""
        for s, e, d in zip(
            self._starts.tolist(), self._ends.tolist(), self._dirty.tolist()
        ):
            yield Extent(s, e, d)

    def resident_lines(self, start: int, end: int) -> int:
        """How many lines of [start, end) are currently resident."""
        if start >= end or not len(self._starts):
            return 0
        lo = np.maximum(self._starts, start)
        hi = np.minimum(self._ends, end)
        return int(np.maximum(hi - lo, 0).sum())

    def flush(self) -> int:
        """Drop everything; returns the number of dirty lines flushed."""
        dirty = int(((self._ends - self._starts) * self._dirty).sum())
        self._set(_EMPTY_I, _EMPTY_I, _EMPTY_B)
        return dirty

    def _set(self, starts, ends, dirty) -> None:
        self._starts = starts
        self._ends = ends
        self._dirty = dirty
        self._lines = int((ends - starts).sum())

    def _check(self) -> None:
        """Invariant check used by tests (disjointness, capacity, count)."""
        order = np.argsort(self._starts)
        s = self._starts[order]
        e = self._ends[order]
        if np.any(s >= e):
            raise HardwareError(f"{self.name}: empty extent present")
        if np.any(s[1:] < e[:-1]):
            raise HardwareError(f"{self.name}: overlapping extents")
        total = int((self._ends - self._starts).sum())
        if total != self._lines:
            raise HardwareError(f"{self.name}: line count drift {total} != {self._lines}")
        if total > self.capacity:
            raise HardwareError(f"{self.name}: over capacity {total} > {self.capacity}")

    # ---------------------------------------------------- profiled API
    # The public ops delegate to ``_``-prefixed implementations through
    # a wall-clock timing branch.  With ``prof`` unset or disabled the
    # only overhead is one attribute check per bulk op (each op already
    # does several NumPy array rebuilds, so this is noise).

    def peek(self, start: int, end: int) -> list[tuple[int, int, bool]]:
        prof = self.prof
        if prof is None or not prof.enabled:
            return self._peek(start, end)
        frame = prof.push("cache.peek")
        try:
            return self._peek(start, end)
        finally:
            prof.pop(frame)

    def access(self, start: int, end: int, write: bool) -> AccessResult:
        prof = self.prof
        if prof is None or not prof.enabled:
            return self._access(start, end, write)
        frame = prof.push("cache.access")
        try:
            return self._access(start, end, write)
        finally:
            prof.pop(frame)

    def invalidate(self, start: int, end: int) -> tuple[int, int]:
        prof = self.prof
        if prof is None or not prof.enabled:
            return self._invalidate(start, end)
        frame = prof.push("cache.invalidate")
        try:
            return self._invalidate(start, end)
        finally:
            prof.pop(frame)

    def downgrade(self, start: int, end: int) -> int:
        prof = self.prof
        if prof is None or not prof.enabled:
            return self._downgrade(start, end)
        frame = prof.push("cache.downgrade")
        try:
            return self._downgrade(start, end)
        finally:
            prof.pop(frame)

    # ------------------------------------------------------------ peek
    def _peek(self, start: int, end: int) -> list[tuple[int, int, bool]]:
        """Resident overlaps of [start, end) as (start, end, dirty),
        in address order, without touching LRU state (a snoop probe).
        Address-adjacent same-dirty segments are merged."""
        if start >= end or not len(self._starts):
            return []
        lo = np.maximum(self._starts, start)
        hi = np.minimum(self._ends, end)
        mask = lo < hi
        if not mask.any():
            return []
        raw = sorted(zip(lo[mask].tolist(), hi[mask].tolist(), self._dirty[mask].tolist()))
        out: list[tuple[int, int, bool]] = []
        for a, b, dirty in raw:
            if out and out[-1][1] == a and out[-1][2] == dirty:
                out[-1] = (out[-1][0], b, dirty)
            else:
                out.append((a, b, dirty))
        return out

    # ---------------------------------------------------------- access
    def _access(self, start: int, end: int, write: bool) -> AccessResult:
        """Bulk access of lines [start, end) in ascending order.

        Returns exact hit/miss counts and the number of dirty lines
        evicted (both mid-sweep self-evictions and capacity evictions).
        """
        if start >= end:
            return AccessResult(0, 0, 0)
        cap = self.capacity
        starts, ends, dirty = self._starts, self._ends, self._dirty
        n = len(starts)

        # -- 1. resident runs of R with the depth of their first line
        if n:
            lo = np.maximum(starts, start)
            hi = np.minimum(ends, end)
            ov = lo < hi
        else:
            ov = _EMPTY_B
        hits = 0
        misses = 0
        wb_self = 0
        survivors: list[tuple[int, int, bool]] = []
        if ov.any():
            sizes = ends - starts
            prefixes = np.concatenate(([0], np.cumsum(sizes)[:-1]))
            idx = np.nonzero(ov)[0]
            run_lo = lo[idx]
            order = np.argsort(run_lo, kind="stable")
            idx = idx[order]
            runs = zip(
                lo[idx].tolist(),
                hi[idx].tolist(),
                dirty[idx].tolist(),
                (prefixes[idx] + ends[idx] - 1 - lo[idx]).tolist(),
            )
            # -- 2. sweep in address order, deciding survival per run.
            # Line x in [a, b) has pre-sweep depth d(x) = depth_a-(x-a)
            # and survives iff s(d(x)) > T, where s(d) counts
            # already-hit lines with pre-sweep depth < d; survivors
            # form an address prefix of each run.
            hit_depths: list[tuple[int, int]] = []
            cursor = start
            for a, b, run_dirty, depth_a in runs:
                misses += a - cursor
                cursor = b
                run_len = b - a
                T = hits + misses + depth_a - cap
                if T < 0:
                    survive = run_len
                else:
                    survive = _count_surviving(
                        hit_depths, depth_a - (run_len - 1), depth_a, T
                    )
                if survive > 0:
                    hits += survive
                    hit_depths.append((depth_a - survive + 1, depth_a + 1))
                    survivors.append((a, a + survive, run_dirty))
                failed = run_len - survive
                if failed > 0:
                    misses += failed
                    if run_dirty:
                        wb_self += failed
            misses += end - cursor
        else:
            misses = end - start

        # -- 3. top band covering R (descending address order)
        band = _build_band(start, end, write, survivors)

        # -- 4. remaining old extents: drop the overlap, keep the rest
        if n:
            new_starts, new_ends, new_dirty = _remove_range(
                starts, ends, dirty, start, end, ov
            )
            bs, be, bd = band
            new_starts = np.concatenate((bs, new_starts))
            new_ends = np.concatenate((be, new_ends))
            new_dirty = np.concatenate((bd, new_dirty))
        else:
            new_starts, new_ends, new_dirty = band

        # -- 5. trim to capacity from the bottom (deepest line of the
        # deepest extent = its lowest address)
        new_starts, new_ends, new_dirty, wb_evict = _trim(
            new_starts, new_ends, new_dirty, cap
        )
        self._set(*_merge_stack(new_starts, new_ends, new_dirty))
        return AccessResult(hits, misses, wb_self + wb_evict)

    # ------------------------------------------------------ coherence
    def _invalidate(self, start: int, end: int) -> tuple[int, int]:
        """Remove [start, end); returns (resident_lines, dirty_lines)."""
        starts, ends, dirty = self._starts, self._ends, self._dirty
        if start >= end or not len(starts):
            return (0, 0)
        lo = np.maximum(starts, start)
        hi = np.minimum(ends, end)
        ov = lo < hi
        if not ov.any():
            return (0, 0)
        overlap = np.maximum(hi - lo, 0)
        resident = int(overlap[ov].sum())
        dirty_lines = int(overlap[ov & dirty].sum())
        self._set(*_remove_range(starts, ends, dirty, start, end, ov))
        return resident, dirty_lines

    def _downgrade(self, start: int, end: int) -> int:
        """Mark [start, end) clean (after a snoop read forces a
        writeback); returns the number of lines that were dirty."""
        starts, ends, dirty = self._starts, self._ends, self._dirty
        if start >= end or not len(starts):
            return 0
        lo = np.maximum(starts, start)
        hi = np.minimum(ends, end)
        hot = (lo < hi) & dirty
        if not hot.any():
            return 0
        dirtied = int(np.maximum(hi - lo, 0)[hot].sum())
        # Fully-covered dirty extents just flip clean; partially covered
        # ones split into up to three pieces (high / clean middle / low)
        # preserving the depth convention.
        out_s: list[np.ndarray] = []
        out_e: list[np.ndarray] = []
        out_d: list[np.ndarray] = []
        full = hot & (starts >= start) & (ends <= end)
        partial_idx = np.nonzero(hot & ~full)[0]
        new_dirty = dirty.copy()
        new_dirty[full] = False
        prev = 0
        for i in partial_idx.tolist():
            _append_rows(out_s, out_e, out_d, starts, ends, new_dirty, prev, i)
            a, b = max(starts[i], start), min(ends[i], end)
            piece_s, piece_e, piece_d = [], [], []
            if b < ends[i]:
                piece_s.append(b)
                piece_e.append(ends[i])
                piece_d.append(True)
            piece_s.append(a)
            piece_e.append(b)
            piece_d.append(False)
            if starts[i] < a:
                piece_s.append(starts[i])
                piece_e.append(a)
                piece_d.append(True)
            out_s.append(np.array(piece_s, dtype=np.int64))
            out_e.append(np.array(piece_e, dtype=np.int64))
            out_d.append(np.array(piece_d, dtype=bool))
            prev = i + 1
        _append_rows(out_s, out_e, out_d, starts, ends, new_dirty, prev, len(starts))
        self._set(
            np.concatenate(out_s) if out_s else _EMPTY_I,
            np.concatenate(out_e) if out_e else _EMPTY_I,
            np.concatenate(out_d) if out_d else _EMPTY_B,
        )
        return dirtied


# ---------------------------------------------------------------- helpers
def _append_rows(out_s, out_e, out_d, starts, ends, dirty, lo: int, hi: int) -> None:
    if lo < hi:
        out_s.append(starts[lo:hi])
        out_e.append(ends[lo:hi])
        out_d.append(dirty[lo:hi])


def _remove_range(starts, ends, dirty, start: int, end: int, ov) -> tuple:
    """Drop [start, end) from the extents, keeping stack order.

    Fully-covered extents disappear; the (at most two) partially
    covered ones are replaced in place by their outside pieces, the
    higher-address piece first (it is the more recent one).
    """
    full = ov & (starts >= start) & (ends <= end)
    partial_idx = np.nonzero(ov & ~full)[0]
    keep = ~ov
    if not len(partial_idx):
        return starts[keep], ends[keep], dirty[keep]
    out_s: list[np.ndarray] = []
    out_e: list[np.ndarray] = []
    out_d: list[np.ndarray] = []
    prev = 0

    def keep_slice(lo, hi):
        if lo < hi:
            m = keep[lo:hi]
            out_s.append(starts[lo:hi][m])
            out_e.append(ends[lo:hi][m])
            out_d.append(dirty[lo:hi][m])

    for i in partial_idx.tolist():
        keep_slice(prev, i)
        piece_s, piece_e = [], []
        a, b = max(starts[i], start), min(ends[i], end)
        if b < ends[i]:  # higher-address remainder first (more recent)
            piece_s.append(b)
            piece_e.append(ends[i])
        if starts[i] < a:
            piece_s.append(starts[i])
            piece_e.append(a)
        out_s.append(np.array(piece_s, dtype=np.int64))
        out_e.append(np.array(piece_e, dtype=np.int64))
        out_d.append(np.full(len(piece_s), bool(dirty[i])))
        prev = i + 1
    keep_slice(prev, len(starts))
    return np.concatenate(out_s), np.concatenate(out_e), np.concatenate(out_d)


def _build_band(start: int, end: int, write: bool, survivors) -> tuple:
    """Piece arrays covering [start, end) in DESCENDING address order
    (most recent = highest address first).

    After a write the whole band is dirty.  After a read, only the
    surviving parts of previously-dirty runs stay dirty (failed dirty
    lines were written back and refetched clean).
    """
    if write:
        return (
            np.array([start], dtype=np.int64),
            np.array([end], dtype=np.int64),
            np.array([True]),
        )
    pieces: list[tuple[int, int, bool]] = []
    cursor = start

    def emit(a: int, b: int, dirty: bool) -> None:
        if a >= b:
            return
        if pieces and pieces[-1][1] == a and pieces[-1][2] == dirty:
            pieces[-1] = (pieces[-1][0], b, dirty)
        else:
            pieces.append((a, b, dirty))

    for a, b, dirty in survivors:
        if not dirty:
            continue
        emit(cursor, a, False)
        emit(a, b, True)
        cursor = b
    emit(cursor, end, False)
    pieces.reverse()
    return (
        np.array([p[0] for p in pieces], dtype=np.int64),
        np.array([p[1] for p in pieces], dtype=np.int64),
        np.array([p[2] for p in pieces], dtype=bool),
    )


def _trim(starts, ends, dirty, cap: int) -> tuple:
    """Evict from the stack bottom until within capacity; returns the
    trimmed arrays and the number of dirty lines written back."""
    sizes = ends - starts
    total = int(sizes.sum())
    if total <= cap:
        return starts, ends, dirty, 0
    cum = np.cumsum(sizes)
    # First extent index at which the running total exceeds capacity.
    cut = int(np.searchsorted(cum, cap, side="left"))
    wb = int((sizes[cut + 1 :] * dirty[cut + 1 :]).sum())
    keep_in_cut = cap - (int(cum[cut - 1]) if cut > 0 else 0)
    excess_in_cut = int(sizes[cut]) - keep_in_cut
    if dirty[cut]:
        wb += excess_in_cut
    starts = starts[: cut + 1].copy()
    ends = ends[: cut + 1]
    dirty = dirty[: cut + 1]
    if keep_in_cut == 0:
        starts, ends, dirty = starts[:cut], ends[:cut], dirty[:cut]
    else:
        # Deepest lines of an extent are its lowest addresses.
        starts[cut] = ends[cut] - keep_in_cut
    return starts, ends, dirty, wb


def _merge_stack(starts, ends, dirty) -> tuple:
    """Coalesce stack-adjacent extents that continue each other.

    If extent ``A`` sits directly above ``B`` in the stack and
    ``A.start == B.end`` with equal dirty flags, the merged extent has
    *identical* per-line depths under the ascending-recency convention,
    so merging is exactness-preserving.  Chunked sweeps produce exactly
    this pattern; without merging the stack would hold one extent per
    chunk.
    """
    n = len(starts)
    if n < 2:
        return starts, ends, dirty
    brk = (starts[:-1] != ends[1:]) | (dirty[:-1] != dirty[1:])
    if brk.all():
        return starts, ends, dirty
    heads = np.concatenate(([True], brk))
    tails = np.concatenate((brk, [True]))
    return starts[tails], ends[heads], dirty[heads]


def _count_surviving(
    hit_depths: list[tuple[int, int]], d_lo: int, d_hi: int, T: int
) -> int:
    """Count depths d in [d_lo, d_hi] (inclusive) with s(d) > T, where
    s(d) = number of already-hit lines with pre-sweep depth < d.

    s is nondecreasing in d, so qualifying depths are a suffix; binary
    search for its start.
    """

    def s(d: int) -> int:
        return sum(max(0, min(hi, d) - lo) for lo, hi in hit_depths)

    if s(d_hi) <= T:
        return 0
    if s(d_lo) > T:
        return d_hi - d_lo + 1
    lo, hi = d_lo, d_hi
    while lo < hi:
        mid = (lo + hi) // 2
        if s(mid) > T:
            hi = mid
        else:
            lo = mid + 1
    return d_hi - lo + 1
