"""The I/OAT DMA engine (Intel I/O Acceleration Technology).

Sec. 3.3: a dedicated device in the memory controller that performs
memory copies in the background.  The processor neither executes the
copy nor caches the data, so I/OAT copies pollute no cache — at the
price of a per-descriptor submission cost and DRAM-speed transfers.

The engine processes descriptors strictly **in order**; the paper's
asynchronous completion trick (Sec. 3.4) exploits this by appending a
one-byte copy that writes ``Success`` into a status variable after the
payload, so completion notification itself runs in the background.

In the simulation, a descriptor's service time is the maximum of the
device's streaming rate and its (contended) share of the DRAM bus; the
source's dirty cache lines are flushed first and the destination's
cached copies invalidated, exactly the coherence work a real
cache-bypassing engine triggers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import HardwareError
from repro.sim.events import AllOf, Event
from repro.sim.resources import Channel
from repro.units import CACHE_LINE, PAGE_SIZE, ceil_div

__all__ = ["DmaDescriptor", "DmaRequest", "DmaEngine"]


@dataclass(frozen=True)
class DmaDescriptor:
    """One physically-contiguous copy handed to the device."""

    src_phys: int
    dst_phys: int
    nbytes: int
    #: Moves the real payload bytes when the simulated copy completes.
    execute: Optional[Callable[[], None]] = None


@dataclass
class DmaRequest:
    """A batch of descriptors with a single completion notification."""

    descriptors: list[DmaDescriptor]
    done: Event
    #: When True, completion is signalled by the in-order one-byte
    #: status-write descriptor (fully-background notification).
    status_write: bool = False
    submitter_core: int = -1
    #: Observability parent: per-descriptor ``dma`` spans link here.
    span: object = None

    @property
    def nbytes(self) -> int:
        return sum(d.nbytes for d in self.descriptors)


class DmaEngine:
    """I/OAT engine attached to a :class:`Machine`.

    ``params.dma_channels`` independent channels process descriptors;
    each *request* is bound to one channel (round-robin), preserving
    the in-order completion property the asynchronous status-write
    trick relies on (Sec. 3.4) — ordering is per channel, and a
    request's trailing status descriptor rides the same channel as its
    payload.
    """

    def __init__(self, engine, machine) -> None:
        self.engine = engine
        self.machine = machine
        self.params = machine.topo.params
        nchan = max(1, self.params.dma_channels)
        self._queues = [
            Channel(engine, name=f"ioat.ch{c}") for c in range(nchan)
        ]
        self._next_channel = 0
        self.bytes_copied = 0
        self.descriptors_processed = 0
        self._workers = [
            engine.process(self._run(q, c), name=f"ioat-engine.ch{c}", daemon=True)
            for c, q in enumerate(self._queues)
        ]

    @property
    def channels(self) -> int:
        return len(self._queues)

    # ---------------------------------------------------------- submit
    def build_descriptors(
        self,
        segments: list[tuple[int, int, int, Optional[Callable[[], None]]]],
    ) -> list[DmaDescriptor]:
        """Split (src_phys, dst_phys, nbytes, execute) segments at the
        device's maximum descriptor size."""
        out: list[DmaDescriptor] = []
        limit = self.params.dma_max_desc_bytes
        for src, dst, nbytes, execute in segments:
            if nbytes <= 0:
                raise HardwareError(f"bad DMA segment length {nbytes}")
            offset = 0
            while offset < nbytes:
                piece = min(limit, nbytes - offset)
                # Attach the data move to the final piece of the segment.
                is_last = offset + piece >= nbytes
                out.append(
                    DmaDescriptor(
                        src + offset, dst + offset, piece, execute if is_last else None
                    )
                )
                offset += piece
        return out

    def submission_cost(self, request: DmaRequest) -> float:
        """CPU time the submitting context spends pushing descriptors
        to the device (doorbell writes over the I/O path)."""
        cost = len(request.descriptors) * self.params.dma_submit
        for d in request.descriptors:
            if d.src_phys % PAGE_SIZE or d.dst_phys % PAGE_SIZE:
                cost += self.params.dma_misalign_penalty
        if request.status_write:
            cost += self.params.dma_submit  # the trailing 1-byte descriptor
        return cost

    def submit(self, request: DmaRequest) -> None:
        """Enqueue a request (submission CPU time is charged by the
        caller via :meth:`submission_cost`)."""
        if not request.descriptors:
            raise HardwareError("empty DMA request")
        if request.submitter_core >= 0:
            self.machine.papi.add(
                request.submitter_core, "DMA_BYTES", request.nbytes
            )
        queue = self._queues[self._next_channel]
        self._next_channel = (self._next_channel + 1) % len(self._queues)
        queue.put(request)

    # ------------------------------------------------------------ work
    def _run(self, queue: Channel, chan: int):
        line = CACHE_LINE
        coherence = self.machine.coherence
        memory = self.machine.memory
        obs = self.engine.obs
        while True:
            request: DmaRequest = yield queue.get()
            for desc in request.descriptors:
                src_l0 = desc.src_phys // line
                src_l1 = src_l0 + ceil_div(desc.nbytes, line)
                dst_l0 = desc.dst_phys // line
                dst_l1 = dst_l0 + ceil_div(desc.nbytes, line)
                flushed = coherence.dma_read(src_l0, src_l1)
                coherence.dma_write(dst_l0, dst_l1)
                memory.charge_writebacks(flushed * line)
                # Service time: device streaming rate, but the data
                # crosses the (shared) DRAM bus twice (read + write).
                t0 = self.engine.now
                span = None
                if obs.enabled:
                    span = obs.begin(
                        "dma.copy", kind="dma", track=f"dma.ch{chan}",
                        parent=request.span, nbytes=desc.nbytes,
                    )
                device = self.engine.timer(desc.nbytes / self.params.dma_rate)
                bus = memory.dram_transfer(2 * desc.nbytes)
                yield AllOf(self.engine, [device, bus])
                obs.end(span)
                if desc.execute is not None:
                    desc.execute()
                self.bytes_copied += desc.nbytes
                self.descriptors_processed += 1
                if self.engine.tracer.enabled:
                    self.engine.tracer.emit(
                        t0, "dma", nbytes=desc.nbytes, end=self.engine.now
                    )
            if request.status_write:
                # The trailing in-order one-byte status copy.
                yield self.engine.timeout(line / self.params.dma_rate)
            request.done.succeed(self.engine.now)
