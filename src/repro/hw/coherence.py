"""MESI-lite coherence across the per-die caches.

The copy engines ask this domain to perform *streams* — bulk reads and
writes of physical line ranges on behalf of a core — and get back a
breakdown of where the lines were served from:

- ``local_hits``   — the core's own L2 (cheap),
- ``remote_hits``  — another die's L2, transferred over the FSB (snoop),
- ``dram_lines``   — memory,
- ``writeback_lines`` — dirty evictions/downgrades this stream caused
  (bus traffic that the memory model charges in the background).

Protocol simplifications (documented in DESIGN.md): lines may be shared
by several caches; a write invalidates all remote copies; a remote read
of a dirty line forces a writeback and leaves the owner with a clean
(shared) copy; DMA traffic bypasses caches but flushes dirty overlap on
reads and invalidates on writes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.cache import ExtentLRUCache
from repro.hw.counters import Papi
from repro.hw.topology import TopologySpec

__all__ = ["StreamBreakdown", "CoherenceDomain"]


@dataclass(frozen=True)
class StreamBreakdown:
    """Where the lines of one bulk stream were served from."""

    local_hits: int
    remote_hits: int
    dram_lines: int
    writeback_lines: int
    #: Lines whose remote (shared) copies a write had to invalidate:
    #: ownership-upgrade transactions on the FSB.
    upgrade_lines: int = 0

    @property
    def lines(self) -> int:
        return self.local_hits + self.remote_hits + self.dram_lines

    @property
    def misses(self) -> int:
        return self.remote_hits + self.dram_lines

    def __add__(self, other: "StreamBreakdown") -> "StreamBreakdown":
        return StreamBreakdown(
            self.local_hits + other.local_hits,
            self.remote_hits + other.remote_hits,
            self.dram_lines + other.dram_lines,
            self.writeback_lines + other.writeback_lines,
            self.upgrade_lines + other.upgrade_lines,
        )


ZERO_BREAKDOWN = StreamBreakdown(0, 0, 0, 0, 0)


def _subtract_segments(
    universe: tuple[int, int], segments: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Portions of ``universe`` not covered by ``segments`` (sorted,
    non-overlapping)."""
    out = []
    cursor, end = universe
    for a, b in segments:
        if a > cursor:
            out.append((cursor, min(a, end)))
        cursor = max(cursor, b)
        if cursor >= end:
            break
    if cursor < end:
        out.append((cursor, end))
    return [(a, b) for a, b in out if a < b]


def _merge_segments(segments: list[tuple[int, int]]) -> list[tuple[int, int]]:
    if not segments:
        return []
    segments = sorted(segments)
    out = [list(segments[0])]
    for a, b in segments[1:]:
        if a <= out[-1][1]:
            out[-1][1] = max(out[-1][1], b)
        else:
            out.append([a, b])
    return [(a, b) for a, b in out]


def _overlap_count(
    segs_a: list[tuple[int, int]], segs_b: list[tuple[int, int]]
) -> int:
    total = 0
    for a1, b1 in segs_a:
        for a2, b2 in segs_b:
            lo, hi = max(a1, a2), min(b1, b2)
            if lo < hi:
                total += hi - lo
    return total


class CoherenceDomain:
    """Coordinates the per-die caches and the PAPI counters."""

    def __init__(
        self, topo: TopologySpec, caches: list[ExtentLRUCache], papi: Papi
    ) -> None:
        if len(caches) != topo.ndies:
            raise ValueError(f"expected {topo.ndies} caches, got {len(caches)}")
        self.topo = topo
        self.caches = caches
        self.papi = papi
        #: Optional multi-tenant interference probe (duck-typed: needs
        #: ``pre_access(die, start, end)`` and ``post_access(die, start,
        #: end, token)``).  Installed by :mod:`repro.sched` to attribute
        #: capacity evictions to the co-located job that caused them;
        #: ``None`` (the default) costs one attribute check per stream.
        self.interference = None

    def cache_of(self, core: int) -> ExtentLRUCache:
        return self.caches[self.topo.die_of(core)]

    # ------------------------------------------------------------ CPU --
    def read(self, core: int, start: int, end: int) -> StreamBreakdown:
        """Core ``core`` streams a read over physical lines [start, end)."""
        return self._stream(core, start, end, write=False)

    def write(self, core: int, start: int, end: int) -> StreamBreakdown:
        """Core ``core`` streams a write (write-allocate: misses fetch
        the line first, remote copies are invalidated)."""
        return self._stream(core, start, end, write=True)

    def _stream(self, core: int, start: int, end: int, write: bool) -> StreamBreakdown:
        if start >= end:
            return ZERO_BREAKDOWN
        die = self.topo.die_of(core)
        local = self.caches[die]

        local_segments = [(a, b) for a, b, _ in local.peek(start, end)]
        gaps = _subtract_segments((start, end), _merge_segments(local_segments))

        # Probe remote caches for the locally-missing portion.
        remote_segments: list[tuple[int, int]] = []
        writebacks = 0
        invalidated = 0
        for other_die, cache in enumerate(self.caches):
            if other_die == die:
                continue
            found = cache.peek(start, end)
            if not found:
                continue
            for a, b, dirty in found:
                remote_segments.append((a, b))
            if write:
                # RFO: invalidate every remote copy; dirty data is
                # transferred to the requester, so no memory writeback,
                # but we still count clean-up of M lines as bus traffic.
                lines, dirty_lines = cache.invalidate(start, end)
                writebacks += dirty_lines
                invalidated += lines
            else:
                # Shared read: the owner keeps a clean copy; dirty lines
                # are written back to memory (M -> S, HITM implicit
                # writeback on FSB platforms).
                writebacks += cache.downgrade(start, end)
        remote_only = _overlap_count(gaps, _merge_segments(remote_segments))

        probe = self.interference
        token = probe.pre_access(die, start, end) if probe is not None else None
        result = local.access(start, end, write=write)
        if probe is not None:
            probe.post_access(die, start, end, token)
        writebacks += result.writebacks

        remote_hits = min(result.misses, remote_only)
        dram = result.misses - remote_hits
        # Upgrades: remote copies invalidated for lines we already had
        # (the write-hit-on-shared case); RFO-fetched lines are already
        # counted in remote_hits.
        upgrades = max(0, invalidated - remote_hits) if write else 0

        papi = self.papi[core]
        papi.add("L2_HITS", result.hits)
        papi.add("L2_MISSES", result.misses)
        papi.add("REMOTE_HITS", remote_hits)
        papi.add("DRAM_LINES", dram)
        papi.add("WRITEBACKS", writebacks)
        return StreamBreakdown(result.hits, remote_hits, dram, writebacks, upgrades)

    # ------------------------------------------------------------ DMA --
    def dma_read(self, start: int, end: int) -> int:
        """DMA engine reads lines [start, end) from memory.

        Dirty cached copies must reach memory first; returns the number
        of lines written back (bus traffic).  Clean copies may stay.
        """
        flushed = 0
        for cache in self.caches:
            flushed += cache.downgrade(start, end)
        return flushed

    def dma_write(self, start: int, end: int) -> int:
        """DMA engine writes lines [start, end) to memory; all cached
        copies become stale and are invalidated.  Returns lines dropped."""
        dropped = 0
        for cache in self.caches:
            resident, _ = cache.invalidate(start, end)
            dropped += resident
        return dropped
