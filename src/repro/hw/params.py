"""Calibrated timing constants for the simulated hardware.

Every constant is expressed per byte or per event, with a provenance
note tying it to a number in the paper (or to well-known Core2-era
microarchitecture figures).  The calibration targets are *shapes*: who
wins in each regime of Figures 3-7, and where the crossovers fall.

All times are seconds; all rates are bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import GiB, KiB, MiB

__all__ = ["HwParams"]


def _per_byte(rate_bytes_per_s: float) -> float:
    """Seconds per byte at the given streaming rate."""
    return 1.0 / rate_bytes_per_s


@dataclass(frozen=True)
class HwParams:
    """Timing model of an E5345-class SMP node.

    A CPU copy moves each byte through one *read* access and one *write*
    access; per-access cost depends on where the line is found (local
    L2, a remote cache via FSB snoop, or DRAM).  The headline calibration
    identities, matching the paper's plateaus:

    - both streams hot in a shared L2:   1 / (2 * t_l2_hit)   ~ 6.0 GiB/s  (Fig. 4 default peak)
    - source snooped from a remote L2:   1 / (t_fsb + t_l2_hit) ~ 3.7 GiB/s (Fig. 5 KNEM plateau)
    - both streams through DRAM:         1 / (2 * t_dram)     ~ 2.2 GiB/s  (single-copy, very large)
    - double-buffered copy through DRAM: two such copies back-to-back    ~ 1.1 GiB/s (Fig. 4/5 default tail)
    - I/OAT DMA:                         dma_rate             ~ 2.6 GiB/s  (Fig. 4-6 I/OAT tail, "2.5x Nemesis")
    """

    # ---- cache geometry ------------------------------------------------
    cache_line: int = 64
    #: L2 capacity per die; overridden per preset (4 MiB E5345, 6 MiB X5460).
    l2_bytes: int = 4 * MiB

    # ---- per-access costs (per byte moved) -----------------------------
    #: Instruction-stream cap of a memcpy loop (L1-resident ceiling).
    t_instr: float = _per_byte(11.0 * GiB)
    #: L2 hit service, per byte per access.
    t_l2_hit: float = _per_byte(12.0 * GiB)
    #: Cache-to-cache transfer over the FSB (snoop hit), per byte.
    t_fsb: float = _per_byte(5.0 * GiB)
    #: DRAM service, per byte per access (load-miss or RFO fill).
    t_dram: float = _per_byte(4.5 * GiB)

    # ---- shared bandwidth resources ------------------------------------
    #: Aggregate DRAM bandwidth shared by all cores + DMA (the MCH
    #: serves two FSBs; 8-core streaming sustains ~6.4 GiB/s).
    dram_bus_rate: float = 6.4 * GiB
    #: Aggregate FSB data bandwidth for cache-to-cache transfers,
    #: DRAM fills and upgrade transactions.  Calibrated so that one
    #: cache-to-cache stream (KNEM) runs near 3.5 GiB/s while the
    #: double-buffer's two crossings saturate it (Fig. 5 regime split).
    fsb_rate: float = 4.0 * GiB
    #: FSB cost weight of an ownership-upgrade transaction relative to
    #: a full line transfer: upgrades are address-only (no data phase),
    #: so they consume only a snoop/arbitration slot.
    fsb_upgrade_weight: float = 0.125

    # ---- I/OAT DMA engine ----------------------------------------------
    #: Steady-state copy rate of one DMA channel (cache-bypassing).
    dma_rate: float = 2.9 * GiB
    #: Number of independent I/OAT channels.  The paper's host exposes
    #: one usable channel (KNEM 0.5 used a single channel); later
    #: MCH revisions offer four — the ablation benchmarks explore it.
    dma_channels: int = 1
    #: Cost of submitting one descriptor (device doorbell over I/O bus).
    dma_submit: float = 2.0e-6
    #: Largest physically-contiguous chunk per descriptor: one page run.
    dma_max_desc_bytes: int = 64 * KiB
    #: Extra submission cost when a user buffer is not page aligned
    #: ("the I/OAT performance is not very stable because of page
    #: alignment problems", Sec. 4.2).
    dma_misalign_penalty: float = 1.5e-6

    # ---- DSA-style memory-operation engines ------------------------------
    #: Shared-work-queue copy engines per socket (Park et al.'s DSA
    #: shape).  0 = the node has none; every Nehalem-era preset keeps
    #: the default so legacy timing is bit-identical.
    dsa_engines: int = 0
    #: Steady-state copy rate of one DSA engine (cache-bypassing).
    dsa_rate: float = 20.0 * GiB
    #: Cost of one ENQCMD/doorbell into a shared work queue.  A *batch*
    #: descriptor amortizes this: one enqueue covers the whole batch.
    dsa_enqueue: float = 0.3e-6
    #: Largest contiguous chunk per descriptor.
    dsa_max_desc_bytes: int = 2 * MiB
    #: Descriptors per batch descriptor; longer requests pay one
    #: enqueue per ceil(n / dsa_batch_max) batch.
    dsa_batch_max: int = 32
    #: Completion notification: "poll" spins on the completion record
    #: (latency = dsa_poll_period, CPU busy), "interrupt" sleeps and
    #: pays the wakeup latency once (CPU idle).
    dsa_completion: str = "poll"
    #: Completion-record poll period while spinning (the simulated spin
    #: loop coalesces several checks per scheduling quantum).
    dsa_poll_period: float = 0.5e-6
    #: Interrupt delivery + wakeup latency for interrupt completions.
    dsa_interrupt_latency: float = 2.0e-6

    # ---- kernel costs ---------------------------------------------------
    #: One syscall entry+exit ("about 100ns on an Intel Xeon", Sec. 3.1).
    t_syscall: float = 100e-9
    #: Pinning one page (get_user_pages-style walk).
    t_pin_page: float = 100e-9
    #: vmsplice per-chunk VFS bookkeeping (file descriptors, pipe buffer
    #: management — "higher initialization costs due to Virtual File
    #: System requirements", Sec. 4.2).
    t_vfs_chunk: float = 1.8e-6
    #: Cost of attaching one page to a pipe buffer in vmsplice (no copy).
    t_splice_page: float = 120e-9
    #: KNEM per-command overhead (ioctl on the pseudo-char device).
    t_knem_cmd: float = 0.9e-6
    #: Waking the peer process (futex/poll detection latency); higher
    #: across dies because the flag cacheline ping-pongs over the FSB.
    t_wakeup_shared: float = 0.25e-6
    t_wakeup_remote: float = 1.1e-6
    #: Copy-ring cell handoff: the Nemesis LMT polls queue-state flags
    #: in shared memory; across dies the flag and queue cachelines
    #: bounce over the FSB and the poll loop observes them late.
    #: Calibrated against the paper's measured double-buffer pipeline
    #: efficiency (Fig. 5: ~1.2 GiB/s across dies vs ~5.7 GiB/s shared).
    t_handoff_shared: float = 0.3e-6
    t_handoff_remote: float = 10.0e-6
    #: Pipe state synchronization per readv chunk (pipe mutex + wait
    #: queues bounce between dies): "vmsplice involves much more
    #: synchronization between source and destination processes,
    #: causing a large overhead when no cache is shared" (Sec. 4.2).
    t_pipe_sync_shared: float = 2.5e-6
    t_pipe_sync_remote: float = 10.0e-6

    # ---- MPI library costs ----------------------------------------------
    #: Per-message software overhead of the Nemesis queues.
    t_mpi_overhead: float = 0.4e-6
    #: Nemesis eager cell payload: eager messages are chunked into
    #: cacheline-queue cells of this size, each paying a queue
    #: enqueue/dequeue cost on both sides.
    eager_cell_bytes: int = 4 * KiB
    #: Per-cell queue operation cost (enqueue or dequeue: lock-free
    #: queue update + flag cacheline management).
    t_cell_op: float = 1.2e-6
    #: Receiver progress-poll period: an asynchronous completion is
    #: noticed at worst this much late.
    t_poll_period: float = 0.5e-6

    # ---- protocol constants ---------------------------------------------
    #: Nemesis copy-buffer cell size for the double-buffering LMT.
    shm_chunk: int = 16 * KiB
    #: Number of cells in the shared copy ring.
    shm_cells: int = 2
    #: Kernel pipe capacity: PIPE_BUFFERS(16) x 4 KiB pages (Sec. 3.1).
    pipe_capacity: int = 64 * KiB
    #: KNEM kernel-copy chunking (progress/pollability granularity).
    knem_chunk: int = 64 * KiB
    #: Eager/rendezvous switch in Nemesis ("the LMT is enabled when the
    #: message size passes 64 KiB").
    lmt_threshold: int = 64 * KiB

    def copy_rate_hot(self) -> float:
        """Steady copy rate when both streams hit the local L2 (bytes/s)."""
        return 1.0 / max(self.t_instr, 2.0 * self.t_l2_hit)

    def copy_rate_dram(self) -> float:
        """Steady single-copy rate through DRAM (bytes/s)."""
        return 1.0 / (2.0 * self.t_dram)

    def scaled(self, **overrides: float) -> "HwParams":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **overrides)
