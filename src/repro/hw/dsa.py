"""DSA-style memory-operation engines (Park et al.'s modern offload shape).

Where I/OAT (:mod:`repro.hw.dma`) models the Nehalem-era chipset engine
— one doorbell per descriptor, tiny descriptors, completion by status
write — a DSA-class device exposes *shared work queues*: user space
submits with a single ENQCMD per **batch descriptor** covering up to
``dsa_batch_max`` copy descriptors, each up to ``dsa_max_desc_bytes``.
The node has ``dsa_engines`` engines per socket; a request is bound to
one engine of the submitter's socket (round-robin), preserving in-order
completion per engine.

Completion is selectable (Sec. 5 of Park et al. prices both):

- ``"poll"``: the submitter spins on the completion record; detection
  latency is one ``dsa_poll_period`` and the spin burns CPU.
- ``"interrupt"``: the submitter sleeps; the device raises an interrupt
  and the waiter pays ``dsa_interrupt_latency`` once, CPU idle.

Like I/OAT, the copies bypass the caches: dirty source lines are
flushed, destination copies invalidated, and the payload crosses the
DRAM bus twice — so DSA jobs pollute no victim cache (the tenancy
story) but never go faster than memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import HardwareError
from repro.sim.events import AllOf, Event
from repro.sim.resources import Channel
from repro.units import CACHE_LINE, ceil_div

__all__ = ["DsaDescriptor", "DsaRequest", "DsaEngine", "COMPLETION_MODES"]

COMPLETION_MODES = ("poll", "interrupt")


@dataclass(frozen=True)
class DsaDescriptor:
    """One contiguous copy inside a batch descriptor."""

    src_phys: int
    dst_phys: int
    nbytes: int
    #: Moves the real payload bytes when the simulated copy completes.
    execute: Optional[Callable[[], None]] = None


@dataclass
class DsaRequest:
    """A batch of descriptors with one completion record."""

    descriptors: list[DsaDescriptor]
    done: Event
    submitter_core: int = -1
    #: Observability parent: per-descriptor ``dsa`` spans link here.
    span: object = None

    @property
    def nbytes(self) -> int:
        return sum(d.nbytes for d in self.descriptors)


class DsaEngine:
    """Per-socket memory-operation engines attached to a :class:`Machine`.

    ``params.dsa_engines`` engines per socket, each with its own shared
    work queue.  A request lands on one engine of the submitter's
    socket; within an engine, descriptors complete strictly in order.
    """

    def __init__(self, engine, machine) -> None:
        self.engine = engine
        self.machine = machine
        self.params = machine.topo.params
        if self.params.dsa_completion not in COMPLETION_MODES:
            raise HardwareError(
                f"dsa_completion must be one of {COMPLETION_MODES}, "
                f"got {self.params.dsa_completion!r}"
            )
        per_socket = max(1, self.params.dsa_engines)
        self._sockets = machine.topo.sockets
        #: queues[socket][engine] — one shared work queue per engine.
        self._queues: list[list[Channel]] = [
            [
                Channel(engine, name=f"dsa.s{s}e{e}")
                for e in range(per_socket)
            ]
            for s in range(self._sockets)
        ]
        self._next_engine = [0] * self._sockets
        self.bytes_copied = 0
        self.descriptors_processed = 0
        self.batches_submitted = 0
        self._workers = [
            engine.process(
                self._run(q, s, e), name=f"dsa-engine.s{s}e{e}", daemon=True
            )
            for s, row in enumerate(self._queues)
            for e, q in enumerate(row)
        ]

    @property
    def engines(self) -> int:
        return sum(len(row) for row in self._queues)

    # ---------------------------------------------------------- submit
    def build_descriptors(
        self,
        segments: list[tuple[int, int, int, Optional[Callable[[], None]]]],
    ) -> list[DsaDescriptor]:
        """Split (src_phys, dst_phys, nbytes, execute) segments at the
        device's maximum descriptor size; total bytes are conserved."""
        out: list[DsaDescriptor] = []
        limit = self.params.dsa_max_desc_bytes
        for src, dst, nbytes, execute in segments:
            if nbytes <= 0:
                raise HardwareError(f"bad DSA segment length {nbytes}")
            offset = 0
            while offset < nbytes:
                piece = min(limit, nbytes - offset)
                # Attach the data move to the final piece of the segment.
                is_last = offset + piece >= nbytes
                out.append(
                    DsaDescriptor(
                        src + offset, dst + offset, piece,
                        execute if is_last else None,
                    )
                )
                offset += piece
        return out

    def batch_count(self, request: DsaRequest) -> int:
        """Batch descriptors needed to carry the request."""
        return ceil_div(len(request.descriptors), self.params.dsa_batch_max)

    def submission_cost(self, request: DsaRequest) -> float:
        """CPU time the submitter spends enqueuing: one ENQCMD/doorbell
        per batch descriptor — not per copy descriptor."""
        return self.batch_count(request) * self.params.dsa_enqueue

    def submit(self, request: DsaRequest) -> None:
        """Enqueue a request on an engine of the submitter's socket
        (submission CPU time is charged by the caller via
        :meth:`submission_cost`)."""
        if not request.descriptors:
            raise HardwareError("empty DSA request")
        if request.submitter_core >= 0:
            self.machine.papi.add(
                request.submitter_core, "DMA_BYTES", request.nbytes
            )
            socket = self.machine.topo.socket_of(request.submitter_core)
        else:
            socket = 0
        row = self._queues[socket]
        queue = row[self._next_engine[socket]]
        self._next_engine[socket] = (self._next_engine[socket] + 1) % len(row)
        self.batches_submitted += self.batch_count(request)
        queue.put(request)

    # ------------------------------------------------------------ work
    def _run(self, queue: Channel, socket: int, eng: int):
        line = CACHE_LINE
        coherence = self.machine.coherence
        memory = self.machine.memory
        obs = self.engine.obs
        prof = obs.prof
        while True:
            request: DsaRequest = yield queue.get()
            for desc in request.descriptors:
                frame = None
                if prof.enabled:
                    frame = prof.push("engine.dsa.dispatch")
                src_l0 = desc.src_phys // line
                src_l1 = src_l0 + ceil_div(desc.nbytes, line)
                dst_l0 = desc.dst_phys // line
                dst_l1 = dst_l0 + ceil_div(desc.nbytes, line)
                flushed = coherence.dma_read(src_l0, src_l1)
                coherence.dma_write(dst_l0, dst_l1)
                memory.charge_writebacks(flushed * line)
                if prof.enabled:
                    prof.pop(frame)
                # Service time: device streaming rate, but the data
                # crosses the (shared) DRAM bus twice (read + write).
                t0 = self.engine.now
                span = None
                if obs.enabled:
                    span = obs.begin(
                        "dsa.copy", kind="dma", track=f"dsa.s{socket}e{eng}",
                        parent=request.span, nbytes=desc.nbytes,
                    )
                device = self.engine.timer(desc.nbytes / self.params.dsa_rate)
                bus = memory.dram_transfer(2 * desc.nbytes)
                yield AllOf(self.engine, [device, bus])
                obs.end(span)
                if desc.execute is not None:
                    frame = None
                    if prof.enabled:
                        frame = prof.push("copy.dsa_execute")
                    desc.execute()
                    if prof.enabled:
                        prof.pop(frame)
                self.bytes_copied += desc.nbytes
                self.descriptors_processed += 1
                if self.engine.tracer.enabled:
                    self.engine.tracer.emit(
                        t0, "dsa", nbytes=desc.nbytes, end=self.engine.now
                    )
            # Completion record: one line written back to memory.
            yield self.engine.timeout(line / self.params.dsa_rate)
            request.done.succeed(self.engine.now)
