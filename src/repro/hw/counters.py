"""PAPI-like hardware event counters.

The paper measures L2 cache misses with PAPI (Table 2).  The simulator
maintains the equivalent counters per core; :class:`Papi` provides the
read-out facade used by the benchmark tables.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.errors import HardwareError

__all__ = ["CounterSet", "Papi", "EVENTS"]

#: Supported event names.
EVENTS = (
    "L2_HITS",          # lines served by the local L2
    "L2_MISSES",        # lines not in the local L2 (remote cache or DRAM)
    "REMOTE_HITS",      # subset of misses served by another cache (snoop)
    "DRAM_LINES",       # subset of misses served by DRAM
    "WRITEBACKS",       # dirty lines written back
    "BYTES_COPIED",     # bytes moved by CPU copies on this core
    "SYSCALLS",         # syscall count
    "PAGES_PINNED",     # pages pinned by the kernel
    "DMA_BYTES",        # bytes this core offloaded to the DMA engine
    "CPU_BUSY",         # seconds of CPU time consumed (float)
)


class CounterSet:
    """Event counters for one core."""

    __slots__ = ("core", "_values")

    def __init__(self, core: int) -> None:
        self.core = core
        self._values: dict[str, float] = defaultdict(float)

    def add(self, event: str, amount: float = 1) -> None:
        if event not in EVENTS:
            raise HardwareError(f"unknown counter event {event!r}")
        self._values[event] += amount

    def read(self, event: str) -> float:
        if event not in EVENTS:
            raise HardwareError(f"unknown counter event {event!r}")
        return self._values[event]

    def snapshot(self) -> dict[str, float]:
        return {e: self._values[e] for e in EVENTS}

    def reset(self) -> None:
        self._values.clear()


class Papi:
    """Per-core counter registry with PAPI-flavoured accessors."""

    def __init__(self, ncores: int) -> None:
        self._sets = [CounterSet(core) for core in range(ncores)]

    def __getitem__(self, core: int) -> CounterSet:
        return self._sets[core]

    def add(self, core: int, event: str, amount: float = 1) -> None:
        self._sets[core].add(event, amount)

    def read(self, core: int, event: str) -> float:
        return self._sets[core].read(event)

    def total(self, event: str, cores: Iterable[int] | None = None) -> float:
        cores = range(len(self._sets)) if cores is None else cores
        return sum(self._sets[c].read(event) for c in cores)

    def reset(self) -> None:
        for s in self._sets:
            s.reset()

    def snapshot(self) -> list[dict[str, float]]:
        return [s.snapshot() for s in self._sets]
