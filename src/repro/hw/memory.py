"""Shared bandwidth resources: the DRAM controller and the FSB.

Both are processor-sharing servers (see :mod:`repro.sim.resources`):
``n`` concurrent streams each get ``1/n`` of the rate.  This is what
creates the paper's Sec. 4.4 effect — eight Alltoall ranks saturate the
memory system, so cache-polluting strategies degrade earlier and the
I/OAT crossover moves from ~1 MiB down to ~200 KiB.
"""

from __future__ import annotations

from repro.hw.params import HwParams
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import ProcessorSharing

__all__ = ["MemorySystem"]


class MemorySystem:
    """The node's shared memory paths."""

    def __init__(self, engine: Engine, params: HwParams) -> None:
        self.engine = engine
        self.params = params
        #: DRAM controller: all cache-miss fills, writebacks and DMA.
        self.dram_bus = ProcessorSharing(engine, params.dram_bus_rate, name="dram")
        #: Front-side bus: cache-to-cache (snoop) transfers.
        self.fsb = ProcessorSharing(engine, params.fsb_rate, name="fsb")
        self._background_bytes = 0.0

    def dram_transfer(self, nbytes: float) -> Event:
        """Foreground DRAM traffic; yield the event to wait for it."""
        return self.dram_bus.request(nbytes)

    def fsb_transfer(self, nbytes: float) -> Event:
        """Foreground cache-to-cache traffic."""
        return self.fsb.request(nbytes)

    def charge_writebacks(self, nbytes: float) -> None:
        """Background DRAM traffic (dirty writebacks drain from the
        buffers asynchronously): consumes bandwidth, nobody waits."""
        if nbytes > 0:
            self._background_bytes += nbytes
            self.dram_bus.request(nbytes)  # completion event intentionally unused

    @property
    def background_bytes(self) -> float:
        """Total writeback traffic charged so far (diagnostics)."""
        return self._background_bytes
