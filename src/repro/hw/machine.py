"""Runtime machine: topology bound to a simulation engine.

A :class:`Machine` owns every stateful hardware object of one
simulation run: per-core processor-sharing resources, per-die caches,
the coherence domain, the memory system, the I/OAT engine, the PAPI
counters and the physical page allocator.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hw.cache import ExtentLRUCache
from repro.hw.coherence import CoherenceDomain
from repro.hw.counters import Papi
from repro.hw.dma import DmaEngine
from repro.hw.dsa import DsaEngine
from repro.hw.memory import MemorySystem
from repro.hw.topology import TopologySpec
from repro.sim.engine import Engine
from repro.sim.resources import ProcessorSharing
from repro.units import CACHE_LINE, PAGE_SIZE, align_up, ceil_div

__all__ = ["Machine"]


class Machine:
    """All runtime hardware state for one simulation."""

    def __init__(self, engine: Engine, topo: TopologySpec) -> None:
        self.engine = engine
        self.topo = topo
        self.params = topo.params
        self.cores = [
            ProcessorSharing(engine, 1.0, name=f"core{i}")
            for i in range(topo.ncores)
        ]
        self.caches = [
            ExtentLRUCache(topo.l2_lines, name=f"L2.die{d}", prof=engine.obs.prof)
            for d in range(topo.ndies)
        ]
        self.papi = Papi(topo.ncores)
        self.coherence = CoherenceDomain(topo, self.caches, self.papi)
        self.memory = MemorySystem(engine, topo.params)
        self.dma = DmaEngine(engine, self)
        # DSA engines exist only on presets that declare them; legacy
        # machines stay byte-identical (no extra daemon processes).
        self.dsa = DsaEngine(engine, self) if topo.params.dsa_engines > 0 else None
        self._phys_cursor = PAGE_SIZE  # keep physical address 0 unmapped

    # -------------------------------------------------- physical memory
    def alloc_phys(self, nbytes: int, align: int = PAGE_SIZE) -> int:
        """Reserve a physically-contiguous range; returns its base address.

        Page-aligned by default, which matters to the DMA path (the
        misalignment penalty models the paper's Sec. 4.2 note).
        """
        if nbytes <= 0:
            raise HardwareError(f"allocation size must be positive: {nbytes}")
        base = align_up(self._phys_cursor, align)
        self._phys_cursor = base + nbytes
        return base

    @staticmethod
    def line_span(phys: int, nbytes: int) -> tuple[int, int]:
        """The [first, last) cache-line numbers covering a byte range."""
        if nbytes <= 0:
            return (phys // CACHE_LINE, phys // CACHE_LINE)
        first = phys // CACHE_LINE
        last = ceil_div(phys + nbytes, CACHE_LINE)
        return first, last

    # ----------------------------------------------------------- sugar
    def core(self, index: int) -> ProcessorSharing:
        return self.cores[index]

    def cache_of_core(self, core: int) -> ExtentLRUCache:
        return self.caches[self.topo.die_of(core)]

    def describe(self) -> str:
        return self.topo.describe()
