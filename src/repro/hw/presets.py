"""The paper's evaluation hosts, as topology presets.

Sec. 4: "Most experiments were run on a dual-socket quad-core Intel
Xeon E5345 (2.33 GHz).  Each processor has two 4 MiB L2 caches shared
between a pair of cores.  We also ran experiments on other hosts, such
as a single-socket quad-core Xeon X5460 (3.16 GHz) with two 6 MiB L2
caches, and observed similar behavior."

``nehalem8`` models the paper's forward-looking discussion (Sec. 6):
an 8-core part with one large cache shared by all cores, used by the
NUMA/affinity extension experiments.
"""

from __future__ import annotations

from repro.hw.params import HwParams
from repro.hw.topology import TopologySpec
from repro.units import GiB, MiB

__all__ = [
    "xeon_e5345",
    "xeon_x5460",
    "nehalem8",
    "modern_server",
    "cluster_of",
]


def xeon_e5345(params: HwParams | None = None) -> TopologySpec:
    """Dual-socket quad-core 2.33 GHz; 4 MiB L2 per core pair (8 cores)."""
    return TopologySpec(
        name="xeon-e5345",
        sockets=2,
        dies_per_socket=2,
        cores_per_die=2,
        params=params or HwParams(l2_bytes=4 * MiB),
    )


def xeon_x5460(params: HwParams | None = None) -> TopologySpec:
    """Single-socket quad-core 3.16 GHz; 6 MiB L2 per core pair.

    The higher clock scales the cache-hit and instruction tiers by the
    frequency ratio; DRAM and DMA rates are board-level and unchanged.
    """
    if params is None:
        base = HwParams()
        ratio = 3.16 / 2.33
        params = base.scaled(
            l2_bytes=6 * MiB,
            t_instr=base.t_instr / ratio,
            t_l2_hit=base.t_l2_hit / ratio,
        )
    return TopologySpec(
        name="xeon-x5460",
        sockets=1,
        dies_per_socket=2,
        cores_per_die=2,
        params=params,
    )


def nehalem8(params: HwParams | None = None) -> TopologySpec:
    """A Nehalem-style 8-core host with one 8 MiB cache shared by all
    cores of a socket (the Sec. 6 'upcoming processors' scenario)."""
    return TopologySpec(
        name="nehalem-8c",
        sockets=1,
        dies_per_socket=1,
        cores_per_die=8,
        params=params or HwParams(l2_bytes=8 * MiB),
    )


def modern_server(params: HwParams | None = None) -> TopologySpec:
    """A modern-generation server socket for the re-derived DMAmin story:
    16 cores sharing one 32 MiB LLC, DDR5-class bandwidth, and DSA-style
    memory-operation engines (see :mod:`repro.hw.dsa`).

    Calibration identities, same style as the E5345 docstring:

    - cache-hot CPU copy:       1 / (2 * t_l2_hit)  ~ 24 GiB/s
    - single copy through DRAM: 1 / (2 * t_dram)    ~  9 GiB/s
    - DSA engine copy:          dsa_rate            ~ 20 GiB/s

    The engine sits *between* the hot-cache and DRAM-bound CPU rates, so
    the crossover logic of the paper survives a fifteen-year hardware
    generation: CPU copy still wins while the working set is
    cache-resident, offload still wins once it is not — but the larger
    LLC pushes DMAmin from ~1 MiB up into the multi-MiB range.
    """
    if params is None:
        params = HwParams(
            l2_bytes=32 * MiB,
            # Per-access costs: DDR5-class core and memory speeds.
            t_instr=1.0 / (44.0 * GiB),
            t_l2_hit=1.0 / (48.0 * GiB),
            t_fsb=1.0 / (20.0 * GiB),
            t_dram=1.0 / (18.0 * GiB),
            dram_bus_rate=48.0 * GiB,
            fsb_rate=32.0 * GiB,
            # The chipset DMA engine grew up too (I/OAT successor).
            dma_rate=6.0 * GiB,
            dma_channels=4,
            # DSA-style engines: one shared-work-queue engine per socket.
            dsa_engines=1,
            dsa_rate=20.0 * GiB,
            # Modern kernels enter/exit faster than the 2009 figure.
            t_syscall=60e-9,
            t_pin_page=80e-9,
        )
    return TopologySpec(
        name="modern-server",
        sockets=1,
        dies_per_socket=1,
        cores_per_die=16,
        params=params,
    )


def cluster_of(topo: TopologySpec, nnodes: int, fabric=None) -> "ClusterSpec":
    """``nnodes`` identical ``topo`` hosts joined by one fabric.

    Example::

        from repro import cluster_of, run_cluster, xeon_e5345
        from repro.units import MiB

        spec = cluster_of(xeon_e5345(), nnodes=2)

        def main(ctx):
            comm = ctx.comm
            buf = ctx.alloc(1 * MiB)
            if ctx.rank == 0:
                yield comm.Send(buf, dest=comm.size - 1)   # crosses the wire
            elif ctx.rank == comm.size - 1:
                status = yield comm.Recv(buf, source=0)
                assert status.path == "nic+rdma"

        result = run_cluster(spec, procs_per_node=4, main=main)

    ``fabric`` overrides the default :class:`~repro.net.fabric.FabricParams`
    (e.g. ``FabricParams().scaled(link_rate=5 * GiB)``).
    """
    from repro.net.fabric import ClusterSpec, FabricParams

    return ClusterSpec(
        node=topo, nnodes=nnodes, fabric=fabric or FabricParams()
    )
