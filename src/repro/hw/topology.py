"""Static machine topology: sockets, dies, cores, cache sharing.

The paper's central variable is *which cores share which L2 cache*.
On the Xeon E5345 each package holds two dual-core dies; each die has a
4 MiB L2 shared by its pair of cores.  Binding the two pingpong ranks to
(0,1) gives the "shared cache" curves; (0,2) is "same socket, different
dies"; (0,4) is "different sockets" — the last two behave alike
("similar to the non-shared-cache case", Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import HardwareError
from repro.hw.params import HwParams

__all__ = ["TopologySpec", "CorePlacement"]


@dataclass(frozen=True)
class CorePlacement:
    """Location of one core in the machine."""

    core: int
    die: int
    socket: int


@dataclass(frozen=True)
class TopologySpec:
    """Immutable description of an SMP node.

    Parameters
    ----------
    name:
        Human-readable host name (e.g. ``"xeon-e5345"``).
    sockets:
        Number of physical packages.
    dies_per_socket:
        Dies per package; one last-level cache per die.
    cores_per_die:
        Cores sharing each die's cache.
    params:
        Timing constants (includes the per-die L2 size).
    """

    name: str
    sockets: int
    dies_per_socket: int
    cores_per_die: int
    params: HwParams = field(default_factory=HwParams)

    def __post_init__(self) -> None:
        if min(self.sockets, self.dies_per_socket, self.cores_per_die) < 1:
            raise HardwareError(f"degenerate topology: {self}")

    # -- derived sizes --------------------------------------------------
    @property
    def ncores(self) -> int:
        return self.sockets * self.dies_per_socket * self.cores_per_die

    @property
    def ndies(self) -> int:
        return self.sockets * self.dies_per_socket

    @property
    def l2_lines(self) -> int:
        return self.params.l2_bytes // self.params.cache_line

    # -- placement queries ----------------------------------------------
    def placement(self, core: int) -> CorePlacement:
        if not 0 <= core < self.ncores:
            raise HardwareError(f"core {core} out of range for {self.name}")
        die = core // self.cores_per_die
        socket = die // self.dies_per_socket
        return CorePlacement(core=core, die=die, socket=socket)

    def die_of(self, core: int) -> int:
        return self.placement(core).die

    def socket_of(self, core: int) -> int:
        return self.placement(core).socket

    def cores_of_die(self, die: int) -> list[int]:
        if not 0 <= die < self.ndies:
            raise HardwareError(f"die {die} out of range for {self.name}")
        base = die * self.cores_per_die
        return list(range(base, base + self.cores_per_die))

    def shares_cache(self, core_a: int, core_b: int) -> bool:
        """True when the two cores share a last-level cache."""
        return self.die_of(core_a) == self.die_of(core_b)

    def same_socket(self, core_a: int, core_b: int) -> bool:
        return self.socket_of(core_a) == self.socket_of(core_b)

    def iter_cores(self) -> Iterator[CorePlacement]:
        return (self.placement(c) for c in range(self.ncores))

    # -- the paper's threshold inputs ------------------------------------
    def cores_sharing_cache(self) -> int:
        """Cores per last-level cache (the denominator input of DMAmin)."""
        return self.cores_per_die

    def dmamin_bytes(self, processes_using_cache: int | None = None) -> int:
        """The paper's dynamic I/OAT threshold (Sec. 3.5):

        ``DMAmin = cache_size / (2 x processes using the cache)``

        With one MPI process per core this reduces to the
        architecture-only form ``cache / (2 x cores sharing it)``.
        """
        sharers = (
            processes_using_cache
            if processes_using_cache is not None
            else self.cores_sharing_cache()
        )
        if sharers < 1:
            raise HardwareError(f"sharers must be >= 1, got {sharers}")
        return self.params.l2_bytes // (2 * sharers)

    def describe(self) -> str:
        from repro.units import fmt_size

        return (
            f"{self.name}: {self.sockets} socket(s) x {self.dies_per_socket} "
            f"die(s) x {self.cores_per_die} core(s), "
            f"{fmt_size(self.params.l2_bytes)} L2 per die"
        )
