"""Hardware model: topology, caches, coherence, memory bus, DMA engine.

This subpackage simulates the machine the paper ran on — a dual-socket
quad-core Intel Xeon E5345 where each pair of cores shares a 4 MiB L2 —
at the granularity the paper reasons about: cache lines, shared caches,
the front-side bus, and the I/OAT DMA engine.

The static description of a machine is a :class:`~repro.hw.topology.TopologySpec`
(see :mod:`repro.hw.presets` for the paper's hosts).  A runtime
:class:`~repro.hw.machine.Machine` binds that description to a simulation
engine: per-core processor-sharing resources, per-die extent-LRU caches,
a coherence domain, bus bandwidth resources, the DMA engine and PAPI-like
counters.
"""

from repro.hw.cache import AccessResult, ExtentLRUCache
from repro.hw.coherence import CoherenceDomain, StreamBreakdown
from repro.hw.counters import CounterSet, Papi
from repro.hw.dma import DmaEngine, DmaRequest
from repro.hw.dsa import DsaEngine, DsaRequest
from repro.hw.machine import Machine
from repro.hw.memory import MemorySystem
from repro.hw.params import HwParams
from repro.hw.presets import (
    cluster_of,
    modern_server,
    nehalem8,
    xeon_e5345,
    xeon_x5460,
)
from repro.hw.topology import TopologySpec

__all__ = [
    "AccessResult",
    "ExtentLRUCache",
    "CoherenceDomain",
    "StreamBreakdown",
    "CounterSet",
    "Papi",
    "DmaEngine",
    "DmaRequest",
    "DsaEngine",
    "DsaRequest",
    "Machine",
    "MemorySystem",
    "HwParams",
    "TopologySpec",
    "cluster_of",
    "xeon_e5345",
    "xeon_x5460",
    "nehalem8",
    "modern_server",
]
