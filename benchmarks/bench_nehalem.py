"""Extension experiment: the Sec. 6 'upcoming processors' scenario.

"The increasing number of cores and large, shared caches in the
upcoming processors such as Intel Nehalem [...] will keep raising the
need to carefully tune intranode communication according to process
affinities."

On a Nehalem-style host where all 8 cores share one large cache:

- placement stops mattering (every pair shares the cache), so the
  vmsplice-dynamic policy always picks the default double-buffer;
- DMAmin with one process per core drops to cache/(2x8) — copy offload
  pays off at much *smaller* sizes than on the E5345.
"""

from conftest import run_once

from repro.bench.imb import imb_pingpong
from repro.core.policy import LmtConfig, LmtPolicy
from repro.hw.presets import nehalem8, xeon_e5345
from repro.units import KiB, MiB


def test_placement_insensitivity(benchmark):
    """Any two cores share the cache: pingpong is placement-blind."""
    topo = nehalem8()

    def run():
        return [
            imb_pingpong(topo, 1 * MiB, mode="default", bindings=b).throughput_mib
            for b in [(0, 1), (0, 4), (0, 7)]
        ]

    near, mid, far = run_once(benchmark, run)
    print(f"\n(0,1): {near:.0f}  (0,4): {mid:.0f}  (0,7): {far:.0f} MiB/s")
    assert abs(mid - near) / near < 0.02
    assert abs(far - near) / near < 0.02


def test_dmamin_shrinks_with_core_count(benchmark):
    """cache/(2 x sharers): 8 sharers of 8 MiB -> 512 KiB threshold."""
    topo = nehalem8()

    def run():
        policy = LmtPolicy(topo, LmtConfig(mode="knem-auto"))
        return (
            topo.dmamin_bytes(),  # one process per core
            policy.select(512 * KiB, 0, 7, cache_sharers=8).name,
            policy.select(256 * KiB, 0, 7, cache_sharers=8).name,
        )

    dmamin, at512k, at256k = run_once(benchmark, run)
    print(f"\nDMAmin: {dmamin // KiB} KiB")
    assert dmamin == 512 * KiB
    assert at512k == "knem+ioat+async"
    assert at256k == "knem"


def test_dynamic_vmsplice_never_triggers(benchmark):
    """vmsplice-dynamic falls back to the default everywhere when every
    core pair shares a cache (Sec. 4.1's rule, inverted)."""
    topo = nehalem8()

    def run():
        policy = LmtPolicy(topo, LmtConfig(mode="vmsplice-dynamic"))
        return {policy.select(1 * MiB, 0, c).name for c in range(1, 8)}

    names = run_once(benchmark, run)
    print(f"\nbackends chosen: {names}")
    assert names == {"shm"}
