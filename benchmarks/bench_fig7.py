"""Regenerate Figure 7: IMB Alltoall aggregated throughput, 8 ranks."""

from conftest import run_once

from repro.bench.figures.fig7 import run_fig7
from repro.bench.harness import crossover
from repro.bench.reporting import format_series_table
from repro.units import KiB


def test_fig7(benchmark, topo):
    sweep = run_once(benchmark, run_fig7, topo=topo, fast=True)
    print("\n" + format_series_table(sweep))

    # KNEM clearly ahead of the default for medium blocks.
    at = 32 * KiB
    assert sweep.get("KNEM LMT").y_at(at) > 1.6 * sweep.get("default LMT").y_at(at)
    # vmsplice provides "a smaller but still worthwhile improvement".
    assert sweep.get("vmsplice LMT").y_at(at) > sweep.get("default LMT").y_at(at)

    # I/OAT becomes interesting far below the 1 MiB point-to-point
    # threshold (paper: near 200 KiB).
    x = crossover(sweep.get("KNEM LMT"), sweep.get("KNEM LMT with I/OAT"))
    assert x is not None and x <= 512 * KiB
