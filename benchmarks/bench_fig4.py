"""Regenerate Figure 4: Pingpong throughput, shared 4 MiB L2."""

from conftest import run_once

from repro.bench.figures.fig4 import run_fig4
from repro.bench.reporting import format_series_table
from repro.units import MiB


def test_fig4(benchmark, topo):
    sweep = run_once(benchmark, run_fig4, topo=topo, fast=True)
    print("\n" + format_series_table(sweep))

    # Plateau: default fastest, KNEM "almost as fast", vmsplice below,
    # I/OAT far behind while the cache still pays.
    at = 1 * MiB
    d = sweep.get("default LMT").y_at(at)
    v = sweep.get("vmsplice LMT").y_at(at)
    k = sweep.get("KNEM LMT").y_at(at)
    i = sweep.get("KNEM LMT with I/OAT").y_at(at)
    assert d >= k > v > i
    assert k > 0.9 * d

    # Tail: every CPU strategy collapses at 4 MiB; I/OAT wins.
    tail = 4 * MiB
    i_tail = sweep.get("KNEM LMT with I/OAT").y_at(tail)
    assert i_tail > sweep.get("default LMT").y_at(tail)
    assert i_tail > sweep.get("KNEM LMT").y_at(tail)
    assert i_tail > sweep.get("vmsplice LMT").y_at(tail)
