"""Regenerate Figure 5: Pingpong throughput, no shared cache."""

from conftest import run_once

from repro.bench.figures.fig5 import run_fig5
from repro.bench.reporting import format_series_table
from repro.units import MiB


def test_fig5(benchmark, topo):
    sweep = run_once(benchmark, run_fig5, topo=topo, fast=True)
    print("\n" + format_series_table(sweep))

    at = 1 * MiB
    d = sweep.get("default LMT").y_at(at)
    v = sweep.get("vmsplice LMT").y_at(at)
    k = sweep.get("KNEM LMT").y_at(at)

    # "KNEM is more than three times faster than Nemesis and twice as
    # fast as vmsplice" — we reproduce the ordering with >2.2x / >1.3x.
    assert k > v > d
    assert k > 2.2 * d
    assert k > 1.3 * v

    # I/OAT overtakes everything for very large messages ("a factor of
    # 2.5 over Nemesis").
    tail = 4 * MiB
    i_tail = sweep.get("KNEM LMT with I/OAT").y_at(tail)
    d_tail = sweep.get("default LMT").y_at(tail)
    assert i_tail > 2.0 * d_tail
    assert i_tail > sweep.get("KNEM LMT").y_at(tail)
