"""Regenerate Figure 6: KNEM synchronous vs asynchronous models."""

from conftest import run_once

from repro.bench.figures.fig6 import run_fig6
from repro.bench.reporting import format_series_table
from repro.units import MiB


def test_fig6(benchmark, topo):
    sweep = run_once(benchmark, run_fig6, topo=topo, fast=True)
    print("\n" + format_series_table(sweep))

    at = 1 * MiB
    sync = sweep.get("KNEM LMT - synchronous").y_at(at)
    async_ = sweep.get("KNEM LMT - asynchronous").y_at(at)
    sync_ioat = sweep.get("KNEM LMT - synchronous with I/OAT").y_at(at)
    async_ioat = sweep.get("KNEM LMT - asynchronous with I/OAT").y_at(at)

    # Kernel-thread offload *reduces* throughput (core competition)...
    assert async_ < 0.75 * sync
    # ...but the I/OAT model is not hurt by asynchrony (hardware copies).
    assert async_ioat > 0.93 * sync_ioat
