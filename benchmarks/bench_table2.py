"""Regenerate Table 2: L2 cache misses per workload and strategy."""

from conftest import run_once

from repro.bench.tables.table2 import format_table2, run_table2


def test_table2(benchmark, topo):
    table = run_once(
        benchmark,
        run_table2,
        topo=topo,
        is_iterations=2,
        pingpong_reps=4,
        alltoall_reps=2,
    )
    print("\n" + format_table2(table))

    # 4 MiB pingpong: default worst, I/OAT nearly nothing (paper ratio
    # 45k : 17k : 14k : 3.7k).
    row = table.row("4MiB Pingpong")
    assert row["default"] > row["vmsplice"]
    assert row["default"] > row["knem"]
    assert row["knem"] > 2 * row["knem-ioat"]

    # 4 MiB Alltoall: single-copy strategies clearly below the default
    # (paper ratio 624k : 262k; the simulation reproduces ~1.4x).
    row = table.row("4MiB Alltoall")
    assert row["default"] > 1.25 * row["knem"]
    assert row["default"] > 1.25 * row["vmsplice"]
    assert row["knem-ioat"] < 0.5 * row["knem"]

    # IS: the ~20% total-miss gap that drives the 25% speedup.
    row = table.row("is.B.8")
    assert row["knem-ioat"] < row["vmsplice"] <= row["default"]
    assert row["knem-ioat"] < 0.9 * row["default"]
