"""Regenerate the Sec. 3.5 threshold observations.

"While looking at early performance numbers on 2.33 GHz Xeon
processors with a 4 MiB L2 cache shared between 2 cores, we observed
that KNEM should offload copies to I/OAT hardware when the size passes
1 MiB.  We ran the same test between 2 cores not sharing a cache and
observed that the threshold jumps to 2 MiB.  Running the experiment on
another host with 6 MiB L2 caches increased the threshold by 50%."
"""

from conftest import run_once

from repro.core.autotune import find_ioat_crossover
from repro.hw.presets import xeon_x5460
from repro.units import MiB


def test_threshold_shared_cache(benchmark, topo):
    res = run_once(benchmark, find_ioat_crossover, topo, (0, 1))
    print("\n" + res.describe())
    assert res.predicted_dmamin == 1 * MiB
    assert res.measured_crossover is not None
    assert 0.5 <= res.measured_crossover / res.predicted_dmamin <= 4.0


def test_threshold_no_shared_cache(benchmark, topo):
    res = run_once(benchmark, find_ioat_crossover, topo, (0, 4))
    print("\n" + res.describe())
    assert res.predicted_dmamin == 2 * MiB
    assert res.measured_crossover is not None
    shared = find_ioat_crossover(topo, (0, 1))
    # "the threshold jumps" when no cache is shared.
    assert res.measured_crossover >= shared.measured_crossover


def test_threshold_bigger_cache_scales(benchmark):
    """6 MiB caches raise the predicted threshold by 50%."""
    res = run_once(benchmark, find_ioat_crossover, xeon_x5460(), (0, 1))
    print("\n" + res.describe())
    assert res.predicted_dmamin == int(1.5 * MiB)
