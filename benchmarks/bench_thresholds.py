"""Regenerate the Sec. 3.5 threshold observations.

"While looking at early performance numbers on 2.33 GHz Xeon
processors with a 4 MiB L2 cache shared between 2 cores, we observed
that KNEM should offload copies to I/OAT hardware when the size passes
1 MiB.  We ran the same test between 2 cores not sharing a cache and
observed that the threshold jumps to 2 MiB.  Running the experiment on
another host with 6 MiB L2 caches increased the threshold by 50%."

Ported onto the :mod:`repro.campaign` engine: each observation is one
trial of a ``crossover`` campaign, so the sweep is declarative and the
records carry the same content hashes the result cache uses.
"""

from conftest import run_once

from repro.campaign import CampaignSpec, run_campaign
from repro.units import MiB


def _crossover(machine, pairs):
    """Run a one-machine crossover campaign and index metrics by pair."""
    spec = CampaignSpec(
        name=f"thresholds-{machine}",
        workload="crossover",
        machines=(machine,),
        pairs=tuple(pairs),
        seeds=(0,),
        noise_sigma=0.0,
    )
    run = run_campaign(spec)
    assert not run.failures, run.failures
    return {
        tuple(r["config"]["pair"]): r["metrics"] for r in run.records
    }


def test_threshold_shared_cache(benchmark):
    res = run_once(benchmark, _crossover, "xeon_e5345", [(0, 1)])[(0, 1)]
    print("\n", res)
    assert res["predicted_dmamin"] == 1 * MiB
    assert res["crossover_bytes"] is not None
    assert 0.5 <= res["crossover_bytes"] / res["predicted_dmamin"] <= 4.0


def test_threshold_no_shared_cache(benchmark):
    by_pair = run_once(benchmark, _crossover, "xeon_e5345", [(0, 1), (0, 4)])
    shared, remote = by_pair[(0, 1)], by_pair[(0, 4)]
    print("\n", remote)
    assert remote["predicted_dmamin"] == 2 * MiB
    assert remote["crossover_bytes"] is not None
    # "the threshold jumps" when no cache is shared.
    assert remote["crossover_bytes"] >= shared["crossover_bytes"]


def test_threshold_bigger_cache_scales(benchmark):
    """6 MiB caches raise the predicted threshold by 50%."""
    res = run_once(benchmark, _crossover, "xeon_x5460", [(0, 1)])[(0, 1)]
    print("\n", res)
    assert res["predicted_dmamin"] == int(1.5 * MiB)
