"""Regenerate Figure 3: Pingpong, vmsplice vs writev vs default LMT."""

from conftest import run_once

from repro.bench.figures.fig3 import run_fig3
from repro.bench.reporting import format_series_table
from repro.units import MiB


def test_fig3(benchmark, topo):
    sweep = run_once(benchmark, run_fig3, topo=topo, fast=True)
    print("\n" + format_series_table(sweep))

    at = 1 * MiB
    d_shared = sweep.get("default LMT - Shared Cache").y_at(at)
    v_shared = sweep.get("vmsplice LMT - Shared Cache").y_at(at)
    w_shared = sweep.get("vmsplice LMT using writev - Shared Cache").y_at(at)
    d_dies = sweep.get("default LMT - Different Dies").y_at(at)
    v_dies = sweep.get("vmsplice LMT - Different Dies").y_at(at)
    w_dies = sweep.get("vmsplice LMT using writev - Different Dies").y_at(at)

    # Splicing beats writev ("up to a factor of 2") in both placements.
    assert v_shared > 1.3 * w_shared
    assert v_dies > 1.15 * w_dies
    # vmsplice wins across dies, loses inside a shared cache.
    assert v_dies > d_dies
    assert v_shared < d_shared
