"""Shared fixtures for the paper-artifact benchmarks.

Every benchmark regenerates one table or figure of the paper on the
simulated testbed (fast parameterizations — the full sweeps are
available through ``repro-bench``).  ``--benchmark-only`` runs them:

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.hw.presets import xeon_e5345


@pytest.fixture(scope="session")
def topo():
    return xeon_e5345()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
