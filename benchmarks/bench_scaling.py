"""Scaling studies: rank counts and NAS problem classes.

Not figures from the paper, but the questions its Sec. 6 raises — how
the strategy gaps evolve as more cores participate and as problems
grow — answered on the same testbed.
"""

import pytest
from conftest import run_once

from repro.bench.imb import imb_alltoall
from repro.bench.nas import get_spec, run_nas
from repro.units import KiB, MiB


def test_alltoall_rank_scaling(benchmark, topo):
    """Aggregated throughput saturates with rank count: doubling the
    ranks cannot double the aggregate once the FSB/DRAM pools fill —
    and the KNEM advantage persists at every width."""

    def run():
        out = {}
        for nprocs in (2, 4, 8):
            out[nprocs] = {
                mode: imb_alltoall(
                    topo, 256 * KiB, mode=mode, nprocs=nprocs, repetitions=2
                ).aggregated_mib
                for mode in ("default", "knem")
            }
        return out

    out = run_once(benchmark, run)
    print("\n", out)
    for nprocs in (2, 4, 8):
        assert out[nprocs]["knem"] > out[nprocs]["default"]
    # Saturation: 8 ranks deliver less than 2x the 4-rank aggregate.
    assert out[8]["knem"] < 2 * out[4]["knem"]


def test_nas_is_class_scaling(benchmark, topo):
    """The IS speedup mechanism holds from class A to class C."""

    def run():
        out = {}
        for klass in ("A", "B", "C"):
            spec = get_spec("is", klass)
            base = run_nas(spec, topo, mode="default", iterations=1)
            fast = run_nas(spec, topo, mode="knem-ioat", iterations=1)
            out[klass] = (base.seconds, fast.speedup_vs(base))
        return out

    out = run_once(benchmark, run)
    print("\n", {k: (f"{t:.2f}s", f"{s * 100:+.1f}%") for k, (t, s) in out.items()})
    # Runtime ordering by volume.
    assert out["A"][0] < out["B"][0] < out["C"][0]
    # Speedup present at every class.
    for klass in ("A", "B", "C"):
        assert out[klass][1] > 0.1
