"""Cluster fabric studies: pingpong shapes and hierarchical collectives.

Beyond the paper: its intranode transfer strategies embedded in the
multi-node setting they were built for.  Sweeps nodes x message size
over the simulated fabric and checks the canonical shapes — internode
latency floor, eager/rendezvous crossover, link-rate saturation, and
the hierarchy-vs-flat allreduce win.  Results are rendered through the
JSON reporter so each document carries its ``topology`` block.
"""

import json

import pytest
from conftest import run_once

from repro.bench.harness import Sweep
from repro.bench.reporting import format_json, resilience_block
from repro.faults import FaultPlan
from repro.hw import cluster_of
from repro.mpi import run_cluster, run_mpi
from repro.mpi.coll.tuning import CollTuning
from repro.units import KiB, MiB, mib_per_s

SIZES = [4 * KiB, 64 * KiB, 256 * KiB, 1 * MiB]
FLAT = CollTuning(hier_bcast_min=1 << 40, hier_allreduce_min=1 << 40)


def _pingpong(nbytes, reps=2):
    def main(ctx):
        comm = ctx.comm
        buf = ctx.alloc(nbytes)
        peer = 1 - ctx.rank
        status = None
        start = None
        for rep in range(reps + 1):
            if rep == 1:
                start = ctx.now
            if ctx.rank == 0:
                yield comm.Send(buf, dest=peer, tag=rep)
                yield comm.Recv(buf, source=peer, tag=rep)
            else:
                status = yield comm.Recv(buf, source=peer, tag=rep)
                yield comm.Send(buf, dest=peer, tag=rep)
        if ctx.rank == 0:
            return (ctx.now - start) / (2 * reps)
        return status.path

    return main


def _allreduce(nbytes, reps=1):
    def main(ctx):
        from repro.mpi.coll.reduce import allreduce

        a = ctx.alloc(nbytes)
        b = ctx.alloc(nbytes)
        a.data[:] = ctx.rank + 1
        yield from allreduce(ctx.comm, a, b)  # warm scratch + caches
        t0 = ctx.now
        for _ in range(reps):
            yield from allreduce(ctx.comm, a, b)
        return (ctx.now - t0) / reps

    return main


def test_cluster_pingpong_shapes(benchmark, topo):
    """Intranode vs internode pingpong across the size sweep: the wire
    adds a latency floor for small messages, flips eager->rendezvous at
    the fabric threshold, and caps large messages at the link rate."""
    spec = cluster_of(topo, 2)

    def run():
        sweep = Sweep("cluster pingpong", "size", "MiB/s")
        intra, inter = sweep.new_series("intranode"), sweep.new_series("internode")
        paths = {}
        for nbytes in SIZES:
            r_intra = run_mpi(topo, 2, _pingpong(nbytes), bindings=[0, 1])
            r_inter = run_cluster(spec, 2, _pingpong(nbytes), procs_per_node=1)
            intra.add(nbytes, mib_per_s(nbytes, r_intra.results[0]))
            inter.add(nbytes, mib_per_s(nbytes, r_inter.results[0]))
            paths[nbytes] = r_inter.results[1]
        return sweep, paths

    sweep, paths = run_once(benchmark, run)
    doc = json.loads(format_json(sweep, topology=spec))
    print("\n", format_json(sweep, topology=spec))
    assert doc["topology"] == {
        "kind": "cluster",
        "nodes": 2,
        "cores_per_node": topo.ncores,
        "node": topo.name,
        "fabric": doc["topology"]["fabric"],
    }
    inter = sweep.get("internode")
    intra = sweep.get("intranode")
    # Latency floor: the fabric never beats the Nemesis queues.
    assert all(inter.y_at(x) < intra.y_at(x) for x in SIZES)
    # Eager below the fabric threshold, RDMA rendezvous above.
    assert paths[4 * KiB] == "net-eager"
    assert paths[64 * KiB] == paths[1 * MiB] == "nic+rdma"
    # Large messages saturate the link (one-way goodput, >= 70%).
    assert inter.y_at(1 * MiB) >= 0.7 * spec.fabric.link_rate / MiB


def test_hier_allreduce_beats_flat(benchmark, topo):
    """The headline hierarchy claim: on every node count >= 2, the
    two-level allreduce wins once payloads are bandwidth-bound."""

    def run():
        out = {}
        for nnodes in (2, 4):
            spec = cluster_of(topo, nnodes)
            for label, tuning in (("flat", FLAT), ("hier", None)):
                r = run_cluster(
                    spec,
                    4 * nnodes,
                    _allreduce(256 * KiB),
                    procs_per_node=4,
                    coll_tuning=tuning,
                )
                out[(nnodes, label)] = max(r.results)
        return out

    out = run_once(benchmark, run)
    print(
        "\n",
        {f"{n}n/{l}": f"{t * 1e6:.0f}us" for (n, l), t in sorted(out.items())},
    )
    for nnodes in (2, 4):
        assert out[(nnodes, "hier")] < out[(nnodes, "flat")]


def test_hier_allreduce_node_scaling(benchmark, topo):
    """Flat allreduce degrades with node count (every rank's vector
    crosses the wire); the hierarchy holds the per-node wire volume
    constant, so its advantage grows."""

    def run():
        times = {}
        for nnodes in (2, 4):
            spec = cluster_of(topo, nnodes)
            for label, tuning in (("flat", FLAT), ("hier", None)):
                r = run_cluster(
                    spec,
                    2 * nnodes,
                    _allreduce(256 * KiB),
                    procs_per_node=2,
                    coll_tuning=tuning,
                )
                times[(nnodes, label)] = max(r.results)
        return times

    times = run_once(benchmark, run)
    gain2 = times[(2, "flat")] / times[(2, "hier")]
    gain4 = times[(4, "flat")] / times[(4, "hier")]
    print(f"\n hier gain: 2 nodes {gain2:.2f}x, 4 nodes {gain4:.2f}x")
    assert gain2 > 1 and gain4 > 1
    assert gain4 > gain2


def test_fault_sweep_pingpong(benchmark, topo):
    """Pingpong under a seeded drop-rate sweep: every run completes with
    correct data, losses surface as retransmits and latency (never as
    hangs), and the JSON document carries the resilience block."""
    spec = cluster_of(topo, 2)
    rates = [0.0, 0.05, 0.1]

    def run():
        sweep = Sweep("fault sweep pingpong", "drop rate", "one-way us")
        series = sweep.new_series("256KiB")
        runs = {}
        for drop in rates:
            r = run_cluster(
                spec,
                2,
                _pingpong(256 * KiB),
                procs_per_node=1,
                faults=FaultPlan(seed=42, drop=drop),
            )
            series.add(drop, r.results[0] * 1e6)
            runs[drop] = r
        return sweep, runs

    sweep, runs = run_once(benchmark, run)
    lossy = runs[rates[-1]]
    res = resilience_block(lossy.fabric, policy=lossy.world.policy)
    doc = json.loads(format_json(sweep, topology=spec, resilience=res))
    print("\n", format_json(sweep, topology=spec, resilience=res))
    assert doc["resilience"]["retransmits"] > 0
    assert doc["resilience"]["injected"]["drops_injected"] > 0
    assert doc["resilience"]["retries_exhausted"] == 0
    clean = runs[0.0]
    assert sum(n.retransmits for n in clean.fabric.nics) == 0
    series = sweep.get("256KiB")
    assert series.y_at(rates[-1]) > series.y_at(0.0)  # losses cost time
