"""Cluster fabric studies: pingpong shapes and hierarchical collectives.

Beyond the paper: its intranode transfer strategies embedded in the
multi-node setting they were built for.  Sweeps nodes x message size
over the simulated fabric and checks the canonical shapes — internode
latency floor, eager/rendezvous crossover, link-rate saturation, and
the hierarchy-vs-flat allreduce win.

Ported onto the :mod:`repro.campaign` engine: every study is a
declarative axis cross-product, records carry the trial seeds, and
the fault sweep reads its resilience counters from the trial metrics.
"""

import json

from conftest import run_once

from repro.bench.harness import Sweep
from repro.bench.reporting import format_json
from repro.campaign import CampaignSpec, run_campaign
from repro.hw import cluster_of
from repro.units import KiB, MiB

SIZES = (4 * KiB, 64 * KiB, 256 * KiB, 1 * MiB)


def test_cluster_pingpong_shapes(benchmark, topo):
    """Intranode vs internode pingpong across the size sweep: the wire
    adds a latency floor for small messages, flips eager->rendezvous at
    the fabric threshold, and caps large messages at the link rate."""
    spec = CampaignSpec(
        name="cluster-pingpong",
        sizes=SIZES,
        nnodes=(1, 2),
        seeds=(0,),
        noise_sigma=0.0,
    )

    def run():
        return run_campaign(spec)

    campaign = run_once(benchmark, run)
    assert not campaign.failures, campaign.failures
    sweep = Sweep("cluster pingpong", "size", "MiB/s", seeds=[0])
    intra, inter = sweep.new_series("intranode"), sweep.new_series("internode")
    paths = {}
    for nbytes in SIZES:
        intra.add(nbytes, campaign.metrics_for(size=nbytes, nnodes=1)["mib_per_s"])
        m = campaign.metrics_for(size=nbytes, nnodes=2)
        inter.add(nbytes, m["mib_per_s"])
        paths[nbytes] = m["path"]
    cluster = cluster_of(topo, 2)
    doc = json.loads(format_json(sweep, topology=cluster))
    print("\n", format_json(sweep, topology=cluster))
    assert doc["topology"] == {
        "kind": "cluster",
        "nodes": 2,
        "cores_per_node": topo.ncores,
        "node": topo.name,
        "fabric": doc["topology"]["fabric"],
    }
    assert doc["seeds"] == [0]
    # Latency floor: the fabric never beats the Nemesis queues.
    assert all(inter.y_at(x) < intra.y_at(x) for x in SIZES)
    # Eager below the fabric threshold, RDMA rendezvous above.
    assert paths[4 * KiB] == "net-eager"
    assert paths[64 * KiB] == paths[1 * MiB] == "nic+rdma"
    # Large messages saturate the link (one-way goodput, >= 70%).
    assert inter.y_at(1 * MiB) >= 0.7 * cluster.fabric.link_rate / MiB


def _allreduce_times(procs_per_node):
    """(nnodes, tuning) -> seconds for a flat-vs-hier allreduce study."""
    spec = CampaignSpec(
        name=f"hier-allreduce-ppn{procs_per_node}",
        workload="allreduce",
        sizes=(256 * KiB,),
        nnodes=(2, 4),
        tunings=("default", "flat"),
        seeds=(0,),
        reps=1,
        procs_per_node=procs_per_node,
        noise_sigma=0.0,
    )
    run = run_campaign(spec)
    assert not run.failures, run.failures
    return {
        (nn, "hier" if tuning == "default" else "flat"):
            run.metrics_for(nnodes=nn, tuning=tuning)["seconds"]
        for nn in (2, 4)
        for tuning in ("default", "flat")
    }


def test_hier_allreduce_beats_flat(benchmark):
    """The headline hierarchy claim: on every node count >= 2, the
    two-level allreduce wins once payloads are bandwidth-bound."""
    out = run_once(benchmark, _allreduce_times, 4)
    print(
        "\n",
        {f"{n}n/{l}": f"{t * 1e6:.0f}us" for (n, l), t in sorted(out.items())},
    )
    for nnodes in (2, 4):
        assert out[(nnodes, "hier")] < out[(nnodes, "flat")]


def test_hier_allreduce_node_scaling(benchmark):
    """Flat allreduce degrades with node count (every rank's vector
    crosses the wire); the hierarchy holds the per-node wire volume
    constant, so its advantage grows."""
    times = run_once(benchmark, _allreduce_times, 2)
    gain2 = times[(2, "flat")] / times[(2, "hier")]
    gain4 = times[(4, "flat")] / times[(4, "hier")]
    print(f"\n hier gain: 2 nodes {gain2:.2f}x, 4 nodes {gain4:.2f}x")
    assert gain2 > 1 and gain4 > 1
    assert gain4 > gain2


def test_fault_sweep_pingpong(benchmark):
    """Pingpong under a seeded drop-rate sweep: every run completes with
    correct data, losses surface as retransmits and latency (never as
    hangs), and the trial records carry the resilience counters."""
    rates = (0.0, 0.05, 0.1)
    spec = CampaignSpec(
        name="fault-sweep",
        sizes=(256 * KiB,),
        nnodes=(2,),
        drops=rates,
        seeds=(42,),
        noise_sigma=0.0,
    )

    def run():
        return run_campaign(spec)

    campaign = run_once(benchmark, run)
    assert not campaign.failures, campaign.failures
    doc = campaign.document()
    print("\n", json.dumps(doc["aggregates"], indent=2))
    assert doc["seeds"] == [42]
    lossy = campaign.metrics_for(drop=rates[-1])
    assert lossy["retransmits"] > 0
    assert lossy["drops_injected"] > 0
    assert lossy["retries_exhausted"] == 0
    clean = campaign.metrics_for(drop=0.0)
    assert clean["retransmits"] == 0
    # Losses cost time, never correctness.
    assert lossy["one_way_seconds"] > clean["one_way_seconds"]
