"""Ablation studies on the design choices DESIGN.md calls out.

Each ablation flips one mechanism the paper relies on and checks the
predicted consequence:

- copy-ring cell size / depth (pipelining of the default LMT);
- vmsplice chunking at the 64 KiB pipe limit (responsiveness trade-off
  of Sec. 3.1);
- page-pinning cost (KNEM's fixed per-transfer overhead);
- DMA submission cost (the I/OAT startup term that creates DMAmin);
- the collective concurrency hint (Secs. 4.4/6).
"""

import pytest
from conftest import run_once

from repro.bench.imb import imb_pingpong
from repro.core.policy import LmtConfig, LmtPolicy
from repro.hw.presets import xeon_e5345
from repro.hw.topology import TopologySpec
from repro.units import KiB, MiB


def _topo(**param_overrides) -> TopologySpec:
    base = xeon_e5345()
    return TopologySpec(
        name=base.name,
        sockets=base.sockets,
        dies_per_socket=base.dies_per_socket,
        cores_per_die=base.cores_per_die,
        params=base.params.scaled(**param_overrides),
    )


def test_ablation_ring_depth(benchmark):
    """A single-cell ring cannot pipeline: the default LMT loses its
    copy overlap and slows down."""

    def run():
        deep = imb_pingpong(_topo(shm_cells=2), 1 * MiB, mode="default", bindings=(0, 1))
        shallow = imb_pingpong(
            _topo(shm_cells=1), 1 * MiB, mode="default", bindings=(0, 1)
        )
        return deep.throughput_mib, shallow.throughput_mib

    deep, shallow = run_once(benchmark, run)
    print(f"\nring depth 2: {deep:.0f} MiB/s, depth 1: {shallow:.0f} MiB/s")
    assert shallow < 0.8 * deep


def test_ablation_cell_size(benchmark):
    """Bigger ring cells amortize handoffs across dies."""

    def run():
        small = imb_pingpong(
            _topo(shm_chunk=4 * KiB), 1 * MiB, mode="default", bindings=(0, 4)
        )
        big = imb_pingpong(
            _topo(shm_chunk=64 * KiB), 1 * MiB, mode="default", bindings=(0, 4)
        )
        return small.throughput_mib, big.throughput_mib

    small, big = run_once(benchmark, run)
    print(f"\n4KiB cells: {small:.0f} MiB/s, 64KiB cells: {big:.0f} MiB/s")
    assert big > 1.5 * small


def test_ablation_pipe_capacity(benchmark):
    """A larger pipe (more PIPE_BUFFERS) reduces vmsplice's per-chunk
    costs; the kernel's 64 KiB limit is a real constraint."""

    def run():
        stock = imb_pingpong(
            _topo(pipe_capacity=64 * KiB), 2 * MiB, mode="vmsplice", bindings=(0, 4)
        )
        wide = imb_pingpong(
            _topo(pipe_capacity=512 * KiB), 2 * MiB, mode="vmsplice", bindings=(0, 4)
        )
        return stock.throughput_mib, wide.throughput_mib

    stock, wide = run_once(benchmark, run)
    print(f"\n64KiB pipe: {stock:.0f} MiB/s, 512KiB pipe: {wide:.0f} MiB/s")
    assert wide > stock


def test_ablation_pin_cost(benchmark):
    """Page pinning is KNEM's dominant fixed cost: a free pin pushes
    small-message KNEM throughput visibly up."""

    def run():
        paid = imb_pingpong(_topo(), 128 * KiB, mode="knem", bindings=(0, 4))
        free = imb_pingpong(
            _topo(t_pin_page=0.0), 128 * KiB, mode="knem", bindings=(0, 4)
        )
        return paid.throughput_mib, free.throughput_mib

    paid, free = run_once(benchmark, run)
    print(f"\npinning paid: {paid:.0f} MiB/s, pinning free: {free:.0f} MiB/s")
    assert free > 1.02 * paid


def test_ablation_dma_submit_cost(benchmark):
    """The I/OAT startup term creates the DMAmin crossover: with free
    submission, I/OAT already competes at much smaller sizes."""

    def run():
        stock = imb_pingpong(_topo(), 256 * KiB, mode="knem-ioat", bindings=(0, 4))
        free = imb_pingpong(
            _topo(dma_submit=0.0, dma_misalign_penalty=0.0),
            256 * KiB,
            mode="knem-ioat",
            bindings=(0, 4),
        )
        return stock.throughput_mib, free.throughput_mib

    stock, free = run_once(benchmark, run)
    print(f"\nsubmit paid: {stock:.0f} MiB/s, submit free: {free:.0f} MiB/s")
    assert free > 1.05 * stock


def test_ablation_collective_hint(benchmark):
    """Sec. 6: lowering thresholds for collectives.  With the hint the
    adaptive policy switches a 256 KiB transfer to I/OAT when seven are
    in flight; without it, never."""

    def run():
        topo = xeon_e5345()
        with_hint = LmtPolicy(topo, LmtConfig(mode="adaptive"))
        without = LmtPolicy(topo, LmtConfig(mode="adaptive", use_collective_hint=False))
        return (
            with_hint.select(256 * KiB, 0, 1, cache_sharers=2, hint=7).name,
            without.select(256 * KiB, 0, 1, cache_sharers=2, hint=7).name,
        )

    hinted, unhinted = run_once(benchmark, run)
    print(f"\nwith hint: {hinted}, without: {unhinted}")
    assert hinted == "knem+ioat+async"
    assert unhinted == "knem"


def test_ablation_registration_cache(benchmark):
    """Extension: a pin-registration cache amortizes KNEM's per-message
    pinning when applications reuse buffers (all our benchmarks do)."""
    from repro.core.policy import LmtConfig

    def run():
        topo = xeon_e5345()
        plain = imb_pingpong(topo, 128 * KiB, mode="knem", bindings=(0, 4))
        cached = imb_pingpong(
            topo, 128 * KiB, mode="knem", bindings=(0, 4),
            config=LmtConfig(mode="knem", knem_reg_cache=True),
        )
        return plain.throughput_mib, cached.throughput_mib

    plain, cached = run_once(benchmark, run)
    print(f"\nno regcache: {plain:.0f} MiB/s, with: {cached:.0f} MiB/s")
    assert cached > 1.01 * plain


def test_ablation_dma_channels(benchmark):
    """Extension: extra I/OAT channels only help until the DRAM bus
    saturates — one channel is what the paper's host had, and at these
    rates a second buys little for a single stream."""

    def run():
        single = imb_pingpong(_topo(dma_channels=1), 4 * MiB,
                              mode="knem-ioat", bindings=(0, 4))
        quad = imb_pingpong(_topo(dma_channels=4), 4 * MiB,
                            mode="knem-ioat", bindings=(0, 4))
        return single.throughput_mib, quad.throughput_mib

    single, quad = run_once(benchmark, run)
    print(f"\n1 channel: {single:.0f} MiB/s, 4 channels: {quad:.0f} MiB/s")
    assert quad == pytest.approx(single, rel=0.05)  # bus-bound anyway


def test_ablation_vmsplice_ioat_future_work(benchmark):
    """Sec. 6 future work quantified: I/OAT-drained vmsplice wins at
    4 MiB but per-chunk submissions lose to KNEM at medium sizes."""

    def run():
        topo = xeon_e5345()
        out = {}
        for nbytes, label in [(256 * KiB, "medium"), (4 * MiB, "large")]:
            out[label] = {
                mode: imb_pingpong(topo, nbytes, mode=mode, bindings=(0, 4)).throughput_mib
                for mode in ("vmsplice", "vmsplice-ioat", "knem")
            }
        return out

    out = run_once(benchmark, run)
    print("\n", out)
    assert out["large"]["vmsplice-ioat"] > 1.3 * out["large"]["vmsplice"]
    assert out["medium"]["vmsplice-ioat"] < out["medium"]["knem"]
