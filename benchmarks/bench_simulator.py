"""Performance benchmarks of the simulator itself.

These guard the extent-cache and event-engine optimizations: the paper
sweeps execute tens of thousands of coherence operations, so regressing
the per-operation cost makes the figure benchmarks intractable.
"""

from repro.hw.cache import ExtentLRUCache
from repro.hw.presets import xeon_e5345
from repro.sim import Engine
from repro.units import KiB, MiB


def test_bench_extent_cache_streaming(benchmark):
    """Alternating big sweeps: the fragmentation-heavy pattern."""
    cache = ExtentLRUCache(4 * MiB // 64)

    def run():
        for rep in range(50):
            base = (rep % 3) * 120_000
            for chunk in range(0, 65536, 256):
                cache.access(base + chunk, base + chunk + 256, write=rep % 2 == 0)

    benchmark(run)


def test_bench_engine_event_throughput(benchmark):
    """Raw engine throughput: ping-pong of events between processes."""

    def run():
        eng = Engine()

        def ping(evt_in, evt_out, n):
            for _ in range(n):
                yield evt_in[0]
                evt_in[0] = eng.event()
                evt_out[0].succeed()
                evt_out[0] = eng.event()

        a = [eng.event()]
        b = [eng.event()]

        def driver():
            for _ in range(2000):
                yield 1e-6

        eng.process(driver)
        eng.run()

    benchmark(run)


def test_bench_pingpong_simulation_speed(benchmark):
    """End-to-end: one 1 MiB KNEM pingpong simulation."""
    from repro.bench.imb import imb_pingpong

    topo = xeon_e5345()

    def run():
        return imb_pingpong(topo, 1 * MiB, mode="knem", bindings=(0, 4))

    result = benchmark(run)
    assert result.throughput_mib > 0
