"""Regenerate Table 1: NAS Parallel Benchmark execution times."""

import pytest
from conftest import run_once

from repro.bench.tables.table1 import PAPER_TABLE1, format_table1, run_table1


def test_table1_is_row(benchmark, topo):
    """The headline row: is.B.8 with its ~25% KNEM+I/OAT speedup."""
    rows = run_once(
        benchmark, run_table1, topo=topo, benchmarks=["is.B.8"], iterations_cap=3
    )
    print("\n" + format_table1(rows))
    (row,) = rows
    assert row.seconds["default"] == pytest.approx(
        PAPER_TABLE1["is.B.8"][0], rel=0.15
    )
    assert 0.15 < row.speedup < 0.45  # paper: +25.8%
    # Single-copy strategies in between.
    assert row.seconds["knem-ioat"] < row.seconds["knem"] < row.seconds["default"]
    assert row.seconds["vmsplice"] < row.seconds["default"]


def test_table1_ft_row(benchmark, topo):
    rows = run_once(
        benchmark, run_table1, topo=topo, benchmarks=["ft.B.8"], iterations_cap=3
    )
    print("\n" + format_table1(rows))
    (row,) = rows
    assert row.seconds["default"] == pytest.approx(
        PAPER_TABLE1["ft.B.8"][0], rel=0.15
    )
    assert 0.05 < row.speedup < 0.25  # paper: +10.6%


def test_table1_insensitive_rows(benchmark, topo):
    """ep/lu/mg: no large messages, so deltas stay within a few %."""
    rows = run_once(
        benchmark,
        run_table1,
        topo=topo,
        benchmarks=["ep.B.4", "lu.B.8", "mg.B.8"],
        iterations_cap=2,
    )
    print("\n" + format_table1(rows))
    for row in rows:
        paper_default = PAPER_TABLE1[row.label][0]
        assert row.seconds["default"] == pytest.approx(paper_default, rel=0.15)
        assert abs(row.speedup) < 0.06, row.label
